package multicluster

import (
	"sync"
	"testing"

	"resched/internal/model"
	"resched/internal/profile"
)

func digestSite(t *testing.T, p int) Cluster {
	t.Helper()
	prof := profile.New(p, 0)
	if err := prof.Reserve(0, model.Hour, p/2); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	return Cluster{Name: "siteA", P: p, Avail: prof}
}

func TestDigestValues(t *testing.T) {
	c := digestSite(t, 8)
	dc := NewDigestCache()
	d := dc.Digest(c, 0, 2*model.Hour)
	if d.FreeNow != 4 {
		t.Errorf("FreeNow = %d, want 4 (half the site reserved)", d.FreeNow)
	}
	if d.MinFree != 4 {
		t.Errorf("MinFree = %d, want 4", d.MinFree)
	}
	if want := 6.0; d.AvgFree != want {
		t.Errorf("AvgFree = %g, want %g (4 free for an hour, 8 free for an hour)", d.AvgFree, want)
	}
	if d.FullAt != model.Time(model.Hour) {
		t.Errorf("FullAt = %d, want %d (the site frees up when the reservation ends)", d.FullAt, model.Hour)
	}
}

func TestDigestCacheHitsAndInvalidate(t *testing.T) {
	c := digestSite(t, 8)
	dc := NewDigestCache()
	first := dc.Digest(c, 0, model.Hour)
	second := dc.Digest(c, 0, model.Hour)
	if first != second {
		t.Errorf("cached digest differs: %+v vs %+v", first, second)
	}
	if hits, misses := dc.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	// A different horizon is a different key.
	dc.Digest(c, 0, 2*model.Hour)
	if dc.Len() != 2 {
		t.Errorf("Len = %d, want 2", dc.Len())
	}

	// The reservation changes availability; the invalidated cache must
	// observe it, and foreign sites must keep their entries.
	other := Cluster{Name: "siteB", P: 4, Avail: profile.New(4, 0)}
	dc.Digest(other, 0, model.Hour)
	if err := c.Avail.Reserve(0, model.Hour, 4); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	dc.Invalidate("siteA")
	if dc.Len() != 1 {
		t.Errorf("Len after Invalidate = %d, want 1 (siteB survives)", dc.Len())
	}
	if d := dc.Digest(c, 0, model.Hour); d.FreeNow != 0 {
		t.Errorf("FreeNow after full reservation = %d, want 0", d.FreeNow)
	}
}

func TestDigestDefaultHorizon(t *testing.T) {
	c := digestSite(t, 8)
	dc := NewDigestCache()
	if got, want := dc.Digest(c, 0, 0), dc.Digest(c, 0, model.Hour); got != want {
		t.Errorf("zero horizon digest %+v != one-hour digest %+v", got, want)
	}
}

// TestDigestCacheConcurrent drives the cache from many goroutines so
// `go test -race` verifies the locking and the atomic counters; it is
// the regression test for the cache's concurrency annotations.
func TestDigestCacheConcurrent(t *testing.T) {
	c := digestSite(t, 8)
	other := Cluster{Name: "siteB", P: 4, Avail: profile.New(4, 0)}
	dc := NewDigestCache()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				dc.Digest(c, model.Time(j%5), model.Hour)
				dc.Digest(other, 0, model.Duration(1+j%3)*model.Hour)
				if i == 0 && j%50 == 0 {
					dc.Invalidate("siteA")
				}
				dc.Stats()
				dc.Len()
			}
		}(i)
	}
	wg.Wait()
	hits, misses := dc.Stats()
	if hits+misses != 8*200*2 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, 8*200*2)
	}
	if misses == 0 {
		t.Error("expected at least one miss")
	}
}
