// Availability digests: cheap per-site summaries of the availability
// profile, cached so multi-site placement loops (and the serving
// layer's cluster pickers) do not rescan every profile segment per
// candidate. The cache is the package's one piece of shared mutable
// state and is annotated for the reschedvet concurrency analyzers:
// the map is //reschedvet:guardedby mu, and the hit/miss counters
// commit to the sync/atomic discipline so Stats never contends with
// the serving path.

package multicluster

import (
	"sync"
	"sync/atomic"

	"resched/internal/model"
)

// AvailDigest summarizes one site's availability over [now, now+h).
type AvailDigest struct {
	// FreeNow is the number of free processors at the digest's start.
	FreeNow int
	// MinFree is the minimum simultaneous free count over the horizon.
	MinFree int
	// AvgFree is the time-averaged free count over the horizon.
	AvgFree float64
	// FullAt is the earliest time the whole site is free for one tick,
	// model.Infinity if never within the profile.
	FullAt model.Time
}

// digestKey identifies one cached digest: a site at a query instant
// and horizon. Sites are keyed by name, which Env validation requires
// to be unique.
type digestKey struct {
	site    string
	now     model.Time
	horizon model.Duration
}

// DigestCache memoizes availability digests across placement loops.
// The zero value is not ready; use NewDigestCache. Reserving on a
// site's profile invalidates its digests — callers own that via
// Invalidate, the cache cannot observe profile mutation.
type DigestCache struct {
	mu      sync.Mutex
	digests map[digestKey]AvailDigest //reschedvet:guardedby mu

	// hits and misses use the atomic discipline exclusively.
	hits   uint64
	misses uint64
}

// NewDigestCache returns an empty cache.
func NewDigestCache() *DigestCache {
	return &DigestCache{digests: map[digestKey]AvailDigest{}}
}

// Digest returns the site's availability digest at (now, horizon),
// computing and caching it on miss. A non-positive horizon defaults to
// one hour. The profile scan runs outside the lock: a racing miss on
// the same key computes twice and stores the same value, which is
// cheaper than holding mu across segment scans.
func (dc *DigestCache) Digest(c Cluster, now model.Time, horizon model.Duration) AvailDigest {
	if horizon <= 0 {
		horizon = model.Hour
	}
	key := digestKey{site: c.Name, now: now, horizon: horizon}
	dc.mu.Lock()
	d, ok := dc.digests[key]
	dc.mu.Unlock()
	if ok {
		atomic.AddUint64(&dc.hits, 1)
		return d
	}
	atomic.AddUint64(&dc.misses, 1)
	d = computeDigest(c, now, horizon)
	dc.mu.Lock()
	dc.digests[key] = d
	dc.mu.Unlock()
	return d
}

// Invalidate drops every digest of the named site; call it after
// reserving on the site's profile.
func (dc *DigestCache) Invalidate(site string) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	for k := range dc.digests {
		if k.site == site {
			delete(dc.digests, k)
		}
	}
}

// Len reports the number of cached digests.
func (dc *DigestCache) Len() int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return len(dc.digests)
}

// Stats returns the cumulative hit and miss counts.
func (dc *DigestCache) Stats() (hits, misses uint64) {
	return atomic.LoadUint64(&dc.hits), atomic.LoadUint64(&dc.misses)
}

// computeDigest scans the site's profile once per summary statistic.
func computeDigest(c Cluster, now model.Time, horizon model.Duration) AvailDigest {
	end := now + model.Time(horizon)
	return AvailDigest{
		FreeNow: c.Avail.FreeAt(now),
		MinFree: c.Avail.MinFree(now, end),
		AvgFree: c.Avail.AvgFree(now, end),
		FullAt:  c.Avail.EarliestFit(c.Avail.Capacity(), 1, now),
	}
}
