package multicluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

func chainGraph(n int, seq model.Duration, alpha float64) *dag.Graph {
	g := dag.New(n)
	for i := 0; i < n; i++ {
		g.AddTask(dag.Task{Seq: seq, Alpha: alpha})
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i)
	}
	return g
}

func twoSites(pa, pb int, now model.Time) Env {
	return Env{
		Now: now,
		Clusters: []Cluster{
			{Name: "siteA", P: pa, Avail: profile.New(pa, now)},
			{Name: "siteB", P: pb, Avail: profile.New(pb, now)},
		},
	}
}

func TestEnvValidation(t *testing.T) {
	g := chainGraph(2, model.Hour, 0.1)
	cases := []Env{
		{Now: 0},
		{Now: 0, Clusters: []Cluster{{Name: "x", P: 0, Avail: profile.New(1, 0)}}},
		{Now: 0, Clusters: []Cluster{{Name: "x", P: 4, Avail: profile.New(8, 0)}}},
		{Now: 0, Clusters: []Cluster{{Name: "x", P: 4, Avail: profile.New(4, 100)}}},
		{Now: 0, Clusters: []Cluster{{Name: "x", P: 4, Avail: profile.New(4, 0), Q: 9}}},
	}
	for i, env := range cases {
		if _, err := Turnaround(g, env, Options{}); err == nil {
			t.Fatalf("case %d: invalid env accepted", i)
		}
	}
	if _, err := Turnaround(g, twoSites(4, 4, 0), Options{StageDelay: -1}); err == nil {
		t.Fatal("negative stage delay accepted")
	}
}

func TestSchedulePrefersIdleSite(t *testing.T) {
	// Site A is fully booked for 10 hours; site B is idle. A serial
	// task must land on B immediately.
	g := chainGraph(1, model.Hour, 1)
	env := twoSites(8, 8, 0)
	if err := env.Clusters[0].Avail.Reserve(0, 10*model.Hour, 8); err != nil {
		t.Fatal(err)
	}
	sched, err := Turnaround(g, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, env, sched, Options{}); err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Cluster != 1 || sched.Tasks[0].Start != 0 {
		t.Fatalf("placement %+v, want immediate start on siteB", sched.Tasks[0])
	}
}

func TestStageDelayDiscouragesSiteHopping(t *testing.T) {
	// A chain on two equal idle sites: with a large staging delay the
	// whole chain must stay on one site.
	g := chainGraph(5, model.Hour, 0.1)
	env := twoSites(16, 16, 0)
	sched, err := Turnaround(g, env, Options{StageDelay: 6 * model.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, env, sched, Options{StageDelay: 6 * model.Hour}); err != nil {
		t.Fatal(err)
	}
	site := sched.Tasks[0].Cluster
	for i, pl := range sched.Tasks {
		if pl.Cluster != site {
			t.Fatalf("task %d hopped to site %d despite a 6h staging delay", i, pl.Cluster)
		}
	}
}

func TestForkSpreadsAcrossSites(t *testing.T) {
	// A wide fork of serial tasks on two small sites: with zero staging
	// cost, both sites should be used.
	g := dag.New(9)
	src := g.AddTask(dag.Task{Seq: model.Minute, Alpha: 1})
	for i := 0; i < 8; i++ {
		id := g.AddTask(dag.Task{Seq: 4 * model.Hour, Alpha: 1})
		g.MustAddEdge(src, id)
	}
	env := twoSites(4, 4, 0)
	sched, err := Turnaround(g, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, env, sched, Options{}); err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, pl := range sched.Tasks[1:] {
		used[pl.Cluster] = true
	}
	if len(used) != 2 {
		t.Fatalf("branches used sites %v, want both", used)
	}
}

func TestHeterogeneousSpeedScaling(t *testing.T) {
	// One slow and one 4x site, both idle: a serial task must pick the
	// fast site and finish in a quarter of the time.
	g := chainGraph(1, model.Hour, 1)
	env := Env{
		Now: 0,
		Clusters: []Cluster{
			{Name: "slow", P: 8, Avail: profile.New(8, 0), Speed: 1},
			{Name: "fast", P: 8, Avail: profile.New(8, 0), Speed: 4},
		},
	}
	sched, err := Turnaround(g, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, env, sched, Options{}); err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Cluster != 1 {
		t.Fatalf("task placed on the slow site: %+v", sched.Tasks[0])
	}
	if got := sched.Turnaround(); got != model.Hour/4 {
		t.Fatalf("turnaround = %d, want %d", got, model.Hour/4)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	g := chainGraph(1, model.Hour, 1)
	env := twoSites(4, 4, 0)
	env.Clusters[0].Speed = -1
	if _, err := Turnaround(g, env, Options{}); err == nil {
		t.Fatal("negative speed accepted")
	}
}

func TestSeqOnRounding(t *testing.T) {
	c := Cluster{Speed: 3}
	if got := c.seqOn(10); got != 3 {
		t.Fatalf("seqOn(10) at speed 3 = %d, want 3", got)
	}
	if got := c.seqOn(1); got != 1 {
		t.Fatalf("seqOn(1) = %d, tasks must keep at least a second", got)
	}
	if got := (Cluster{}).seqOn(100); got != 100 {
		t.Fatalf("zero speed must mean 1.0: %d", got)
	}
	if got := c.seqOn(0); got != 0 {
		t.Fatalf("seqOn(0) = %d", got)
	}
}

func TestAllocPolicyTradesCPUForTurnaround(t *testing.T) {
	// A chain (no task parallelism) of poorly-scaling tasks
	// (alpha = 0.5 caps the CPA allocation at 7 of 32 processors): the
	// unbounded M-HEFT-style policy must be at least as fast but
	// strictly more expensive in CPU-hours than the CPA-bounded
	// default.
	g := chainGraph(4, 2*model.Hour, 0.5)
	env := twoSites(32, 32, 0)
	cpaSched, err := Turnaround(g, env, Options{Policy: PolicyCPA})
	if err != nil {
		t.Fatal(err)
	}
	unb, err := Turnaround(g, env, Options{Policy: PolicyUnbounded})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, env, unb, Options{}); err != nil {
		t.Fatal(err)
	}
	if unb.Turnaround() > cpaSched.Turnaround() {
		t.Fatalf("unbounded %d slower than CPA-bounded %d on a chain", unb.Turnaround(), cpaSched.Turnaround())
	}
	if unb.CPUHours() <= cpaSched.CPUHours() {
		t.Fatalf("unbounded CPU-hours %.1f not above CPA-bounded %.1f", unb.CPUHours(), cpaSched.CPUHours())
	}
	if PolicyCPA.String() != "cpa" || PolicyUnbounded.String() != "unbounded" || AllocPolicy(7).String() == "" {
		t.Fatal("AllocPolicy.String broken")
	}
	if _, err := Turnaround(g, env, Options{Policy: AllocPolicy(7)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDeadlineMultiSite(t *testing.T) {
	g := chainGraph(3, model.Hour, 1)
	env := twoSites(4, 4, 0)
	// Site A blocked for the first two hours; site B free.
	if err := env.Clusters[0].Avail.Reserve(0, 2*model.Hour, 4); err != nil {
		t.Fatal(err)
	}
	opt := Options{}
	sched, err := Deadline(g, env, opt, 3*model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, env, sched, opt); err != nil {
		t.Fatal(err)
	}
	if got := sched.Completion(); got > 3*model.Hour {
		t.Fatalf("completion %d after deadline", got)
	}
	// The 3-hour serial chain has zero slack: the first two tasks must
	// avoid the blocked window on site A (only site B can host them).
	for i, pl := range sched.Tasks[:2] {
		if pl.Cluster == 0 {
			t.Fatalf("task %d placed inside site A's blocked window: %+v", i, pl)
		}
	}
	// An impossible deadline reports infeasibility.
	if _, err := Deadline(g, env, opt, 2*model.Hour); err == nil {
		t.Fatal("infeasible deadline accepted")
	}
	if _, err := Deadline(g, env, opt, -5); err == nil {
		t.Fatal("deadline before now accepted")
	}
}

func TestDeadlineStagingDelayAcrossSites(t *testing.T) {
	// Two tasks forced onto different sites by capacity: the staging
	// delay must separate them.
	g := chainGraph(2, model.Hour, 1)
	env := Env{
		Now: 0,
		Clusters: []Cluster{
			{Name: "a", P: 2, Avail: profile.New(2, 0)},
			{Name: "b", P: 2, Avail: profile.New(2, 0)},
		},
	}
	// Site a is only free during [0, 1h); site b only after hour 3.
	// The sole feasible schedule splits the chain across the sites and
	// must leave the staging delay between the two tasks.
	if err := env.Clusters[0].Avail.Reserve(model.Hour, 10*model.Hour, 2); err != nil {
		t.Fatal(err)
	}
	if err := env.Clusters[1].Avail.Reserve(0, 3*model.Hour, 2); err != nil {
		t.Fatal(err)
	}
	opt := Options{StageDelay: 30 * model.Minute}
	sched, err := Deadline(g, env, opt, 4*model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, env, sched, opt); err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Cluster == sched.Tasks[1].Cluster {
		t.Fatalf("expected a cross-site split: %+v", sched.Tasks)
	}
	if sched.Tasks[1].Start < sched.Tasks[0].End+30*model.Minute {
		t.Fatalf("staging delay not honored: %+v", sched.Tasks)
	}
}

func TestDeadlineRandomValid(t *testing.T) {
	f := randomPlatformCase(false)
	for seed := int64(50); seed < 60; seed++ {
		if !f(seed) {
			t.Fatalf("seed %d: invalid", seed)
		}
	}
	// Deadline variant over the same platforms.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = rng.Intn(15) + 4
		g := daggen.MustGenerate(spec, rng)
		env := twoSites(rng.Intn(12)+4, rng.Intn(12)+4, 0)
		opt := Options{StageDelay: model.Duration(rng.Int63n(int64(model.Hour)))}
		fwd, err := Turnaround(g, env, opt)
		if err != nil {
			t.Fatal(err)
		}
		deadline := env.Now + 2*fwd.Turnaround()
		sched, err := Deadline(g, env, opt, deadline)
		if err != nil {
			continue // heuristics may fail on tight instances
		}
		if err := Verify(g, env, sched, opt); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sched.Completion() > deadline {
			t.Fatalf("seed %d: deadline missed", seed)
		}
	}
}

func TestVerifyCatchesCrossSiteViolations(t *testing.T) {
	g := chainGraph(2, model.Hour, 1)
	env := twoSites(4, 4, 0)
	opt := Options{StageDelay: model.Hour}
	sched, err := Turnaround(g, env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, env, sched, opt); err != nil {
		t.Fatal(err)
	}
	// Move the second task to the other site without paying staging.
	bad := &Schedule{Now: sched.Now, Tasks: append([]Placement(nil), sched.Tasks...)}
	bad.Tasks[1].Cluster = 1 - bad.Tasks[1].Cluster
	if err := Verify(g, env, bad, opt); err == nil {
		t.Fatal("missing staging delay not caught")
	}
	bad = &Schedule{Now: sched.Now, Tasks: append([]Placement(nil), sched.Tasks...)}
	bad.Tasks[0].Cluster = 7
	if err := Verify(g, env, bad, opt); err == nil {
		t.Fatal("unknown site not caught")
	}
	if err := Verify(g, env, nil, opt); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

// Property: multi-site schedules over random platforms verify.
func TestTurnaroundRandomValid(t *testing.T) {
	if err := quick.Check(randomPlatformCase(false), &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// On fixed seeds (so the expectation is stable), adding a second idle
// site never hurts the greedy scheduler on these instances.
func TestTwoSitesHelpOnFixedSeeds(t *testing.T) {
	f := randomPlatformCase(true)
	for seed := int64(0); seed < 12; seed++ {
		if !f(seed) {
			t.Fatalf("seed %d: two-site schedule worse than single-site baseline", seed)
		}
	}
}

// randomPlatformCase builds the shared random-instance checker; with
// compareBaseline it additionally requires the two-site schedule to be
// no worse than running on site A alone.
func randomPlatformCase(compareBaseline bool) func(int64) bool {
	return func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = rng.Intn(18) + 4
		g := daggen.MustGenerate(spec, rng)
		env := twoSites(rng.Intn(12)+4, rng.Intn(12)+4, model.Time(rng.Int63n(1000)))
		// Random background reservations on each site.
		for c := range env.Clusters {
			p := env.Clusters[c].P
			for k := 0; k < rng.Intn(8); k++ {
				start := env.Now + model.Time(rng.Int63n(int64(model.Day)))
				dur := model.Duration(rng.Int63n(int64(4*model.Hour)) + 600)
				procs := rng.Intn(p) + 1
				if env.Clusters[c].Avail.MinFree(start, start+dur) >= procs {
					if err := env.Clusters[c].Avail.Reserve(start, start+dur, procs); err != nil {
						return false
					}
				}
			}
		}
		opt := Options{StageDelay: model.Duration(rng.Int63n(int64(model.Hour)))}
		sched, err := Turnaround(g, env, opt)
		if err != nil {
			return false
		}
		if err := Verify(g, env, sched, opt); err != nil {
			return false
		}
		if !compareBaseline {
			return true
		}
		// Single-site baseline: run on site A alone.
		solo := Env{Now: env.Now, Clusters: env.Clusters[:1]}
		ref, err := Turnaround(g, solo, opt)
		if err != nil {
			return false
		}
		return sched.Turnaround() <= ref.Turnaround()
	}
}
