// Package multicluster extends the single-cluster algorithms to
// multi-site platforms, the third future-work direction in the paper's
// conclusion. Each site is a homogeneous cluster with its own
// reservation schedule; a data-parallel task executes wholly within
// one site (malleable tasks do not span clusters), and moving data
// between sites costs a configurable staging delay per crossing edge —
// zero by default, matching the paper's file-based communication model
// whose cost is folded into task execution times.
//
// The scheduler generalizes the paper's best RESSCHED heuristic
// (BL_CPAR + BD_CPAR): bottom levels come from CPA allocations for the
// platform's aggregate historical availability, per-site allocation
// bounds come from CPA runs against each site's own availability, and
// every task is placed at the earliest completion time over all
// (site, allocation) pairs.
package multicluster

import (
	"fmt"

	"resched/internal/core"
	"resched/internal/cpa"
	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

// Cluster is one site of the platform.
type Cluster struct {
	// Name labels the site in schedules and errors.
	Name string
	// P is the site's processor count.
	P int
	// Avail is the site's availability profile (competing
	// reservations). Never modified by the scheduler.
	Avail *profile.Profile
	// Q is the site's historical average number of available
	// processors; zero means P.
	Q int
	// Speed is the site's relative processor speed; zero means 1.0
	// (homogeneous). A task's sequential time on this site is
	// Seq/Speed, the heterogeneous model of N'Takpé, Suter & Casanova
	// (ISPDC 2007) restricted to uniform speeds within a site.
	Speed float64
}

// seqOn returns a task's effective sequential time on this site.
func (c Cluster) seqOn(seq model.Duration) model.Duration {
	speed := c.Speed
	if speed == 0 {
		speed = 1
	}
	scaled := model.Duration(float64(seq)/speed + 0.5)
	if scaled < 1 && seq > 0 {
		scaled = 1
	}
	return scaled
}

// Env is a multi-site scheduling environment.
type Env struct {
	Clusters []Cluster
	Now      model.Time
}

// validate returns per-site effective q values.
func (e *Env) validate() ([]int, error) {
	if len(e.Clusters) == 0 {
		return nil, fmt.Errorf("multicluster: no clusters")
	}
	qs := make([]int, len(e.Clusters))
	for i, c := range e.Clusters {
		if c.P < 1 {
			return nil, fmt.Errorf("multicluster: cluster %q has %d processors", c.Name, c.P)
		}
		if c.Avail == nil || c.Avail.Capacity() != c.P {
			return nil, fmt.Errorf("multicluster: cluster %q has an inconsistent profile", c.Name)
		}
		if c.Avail.Origin() > e.Now {
			return nil, fmt.Errorf("multicluster: cluster %q profile starts after now", c.Name)
		}
		if c.Speed < 0 || c.Speed != c.Speed {
			return nil, fmt.Errorf("multicluster: cluster %q has invalid speed %v", c.Name, c.Speed)
		}
		q := c.Q
		if q == 0 {
			q = c.P
		}
		if q < 1 || q > c.P {
			return nil, fmt.Errorf("multicluster: cluster %q has q %d outside [1,%d]", c.Name, q, c.P)
		}
		qs[i] = q
	}
	return qs, nil
}

// scaledGraph returns the application as seen from a site: sequential
// times divided by the site's speed. Speed 1 returns the graph itself.
func scaledGraph(g *dag.Graph, c Cluster) *dag.Graph {
	if c.Speed == 0 || c.Speed == 1 {
		return g
	}
	out := dag.New(g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(i)
		out.AddTask(dag.Task{Name: t.Name, Seq: c.seqOn(t.Seq), Alpha: t.Alpha})
	}
	for i := 0; i < g.NumTasks(); i++ {
		for _, s := range g.Successors(i) {
			out.MustAddEdge(i, s)
		}
	}
	return out
}

// Placement is one task's reservation: a site plus the usual triple.
type Placement struct {
	Cluster int
	Procs   int
	Start   model.Time
	End     model.Time
}

// Schedule is a complete multi-site schedule.
type Schedule struct {
	Now   model.Time
	Tasks []Placement
}

// Completion returns the latest task end.
func (s *Schedule) Completion() model.Time {
	c := s.Now
	for _, pl := range s.Tasks {
		if pl.End > c {
			c = pl.End
		}
	}
	return c
}

// Turnaround returns Completion() - Now.
func (s *Schedule) Turnaround() model.Duration { return s.Completion() - s.Now }

// CPUHours returns the total reserved processor-hours across sites.
func (s *Schedule) CPUHours() float64 {
	var sum model.Duration
	for _, pl := range s.Tasks {
		sum += model.Duration(pl.Procs) * (pl.End - pl.Start)
	}
	return model.CPUHours(sum)
}

// AllocPolicy selects how per-site task allocations are bounded.
type AllocPolicy int

const (
	// PolicyCPA bounds each task by its per-site CPA allocation — the
	// HCPA-inspired default (N'Takpé, Suter & Casanova, ISPDC 2007).
	PolicyCPA AllocPolicy = iota
	// PolicyUnbounded considers every allocation up to the site size —
	// the M-HEFT-style choice, which buys turnaround on narrow DAGs at
	// a steep CPU-hour premium (the multi-site analogue of BD_ALL).
	PolicyUnbounded
)

func (p AllocPolicy) String() string {
	switch p {
	case PolicyCPA:
		return "cpa"
	case PolicyUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// Options tunes the multi-site scheduler.
type Options struct {
	// StageDelay is added to a predecessor's finish time when the
	// successor runs on a different site (file staging between sites).
	StageDelay model.Duration
	// Policy selects the allocation bound (PolicyCPA by default).
	Policy AllocPolicy
}

// Turnaround schedules the application across the platform, minimizing
// completion time task by task in decreasing bottom-level order.
func Turnaround(g *dag.Graph, env Env, opt Options) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	qs, err := env.validate()
	if err != nil {
		return nil, err
	}
	if opt.StageDelay < 0 {
		return nil, fmt.Errorf("multicluster: negative stage delay %d", opt.StageDelay)
	}

	// Bottom levels from CPA allocations against the platform's
	// largest historical availability (the closest single-cluster
	// equivalent of BL_CPAR).
	qMax := qs[0]
	for _, q := range qs[1:] {
		if q > qMax {
			qMax = q
		}
	}
	blAlloc, err := cpa.Allocate(g, qMax, cpa.StopStringent)
	if err != nil {
		return nil, err
	}
	exec, err := g.ExecTimes(blAlloc)
	if err != nil {
		return nil, err
	}
	order, err := cpa.PriorityOrder(g, exec)
	if err != nil {
		return nil, err
	}

	bounds, err := siteBounds(g, env, qs, opt.Policy)
	if err != nil {
		return nil, err
	}
	avails := make([]*profile.Profile, len(env.Clusters))
	for c := range env.Clusters {
		avails[c] = env.Clusters[c].Avail.Clone()
	}

	sched := &Schedule{Now: env.Now, Tasks: make([]Placement, g.NumTasks())}
	for _, t := range order {
		task := g.Task(t)
		best := Placement{Cluster: -1}
		bestFinish := model.Infinity
		for c := range env.Clusters {
			// Ready time on this site: predecessors on other sites pay
			// the staging delay.
			ready := env.Now
			for _, pr := range g.Predecessors(t) {
				f := sched.Tasks[pr].End
				if sched.Tasks[pr].Cluster != c {
					f += opt.StageDelay
				}
				if f > ready {
					ready = f
				}
			}
			limit := bounds[c][t]
			if limit > env.Clusters[c].P {
				limit = env.Clusters[c].P
			}
			seq := env.Clusters[c].seqOn(task.Seq)
			for m := 1; m <= limit; m++ {
				d := model.ExecTime(seq, task.Alpha, m)
				st := avails[c].EarliestFit(m, d, ready)
				if st+d < bestFinish {
					best = Placement{Cluster: c, Procs: m, Start: st, End: st + d}
					bestFinish = st + d
				}
			}
		}
		if best.Cluster < 0 {
			return nil, fmt.Errorf("multicluster: no placement for task %d", t)
		}
		if best.End > best.Start {
			if err := avails[best.Cluster].Reserve(best.Start, best.End, best.Procs); err != nil {
				return nil, fmt.Errorf("multicluster: reserving task %d on %q: %w", t, env.Clusters[best.Cluster].Name, err)
			}
		}
		sched.Tasks[t] = best
	}
	return sched, nil
}

// Deadline solves the multi-site RESSCHEDDL problem with the
// aggressive backward strategy: tasks in increasing bottom-level order,
// each at the (site, allocation, start) triple with the latest start
// that still finishes before its successors begin, allocations bounded
// by the per-site CPA allocation. It returns an error wrapping
// core-style infeasibility when no placement exists.
func Deadline(g *dag.Graph, env Env, opt Options, deadline model.Time) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	qs, err := env.validate()
	if err != nil {
		return nil, err
	}
	if opt.StageDelay < 0 {
		return nil, fmt.Errorf("multicluster: negative stage delay %d", opt.StageDelay)
	}
	if deadline < env.Now {
		return nil, fmt.Errorf("multicluster: deadline %d before now %d", deadline, env.Now)
	}

	qMax := qs[0]
	for _, q := range qs[1:] {
		if q > qMax {
			qMax = q
		}
	}
	blAlloc, err := cpa.Allocate(g, qMax, cpa.StopStringent)
	if err != nil {
		return nil, err
	}
	exec, err := g.ExecTimes(blAlloc)
	if err != nil {
		return nil, err
	}
	fwd, err := cpa.PriorityOrder(g, exec)
	if err != nil {
		return nil, err
	}
	bounds, err := siteBounds(g, env, qs, opt.Policy)
	if err != nil {
		return nil, err
	}
	avails := make([]*profile.Profile, len(env.Clusters))
	for c := range env.Clusters {
		avails[c] = env.Clusters[c].Avail.Clone()
	}

	sched := &Schedule{Now: env.Now, Tasks: make([]Placement, g.NumTasks())}
	scheduled := make([]bool, g.NumTasks())
	for i := len(fwd) - 1; i >= 0; i-- {
		t := fwd[i]
		task := g.Task(t)
		best := Placement{Cluster: -1}
		for c := range env.Clusters {
			// This task must finish before each scheduled successor
			// starts — minus the staging delay when the successor sits
			// on another site.
			dl := deadline
			for _, sc := range g.Successors(t) {
				if !scheduled[sc] {
					continue
				}
				limit := sched.Tasks[sc].Start
				if sched.Tasks[sc].Cluster != c {
					limit -= opt.StageDelay
				}
				if limit < dl {
					dl = limit
				}
			}
			limit := bounds[c][t]
			if limit > env.Clusters[c].P {
				limit = env.Clusters[c].P
			}
			seq := env.Clusters[c].seqOn(task.Seq)
			for m := 1; m <= limit; m++ {
				d := model.ExecTime(seq, task.Alpha, m)
				st, ok := avails[c].LatestFit(m, d, env.Now, dl)
				if ok && (best.Cluster < 0 || st > best.Start) {
					best = Placement{Cluster: c, Procs: m, Start: st, End: st + d}
				}
			}
		}
		if best.Cluster < 0 {
			return nil, fmt.Errorf("multicluster: %w: task %d has no feasible placement", core.ErrInfeasible, t)
		}
		if best.End > best.Start {
			if err := avails[best.Cluster].Reserve(best.Start, best.End, best.Procs); err != nil {
				return nil, fmt.Errorf("multicluster: reserving task %d: %w", t, err)
			}
		}
		sched.Tasks[t] = best
		scheduled[t] = true
	}
	return sched, nil
}

// siteBounds computes per-site per-task allocation bounds under the
// chosen policy: CPA allocations against each site's q with the site's
// speed-scaled execution times, or the site size when unbounded.
func siteBounds(g *dag.Graph, env Env, qs []int, policy AllocPolicy) ([][]int, error) {
	bounds := make([][]int, len(env.Clusters))
	for c := range env.Clusters {
		switch policy {
		case PolicyCPA:
			b, err := cpa.Allocate(scaledGraph(g, env.Clusters[c]), qs[c], cpa.StopStringent)
			if err != nil {
				return nil, err
			}
			bounds[c] = b
		case PolicyUnbounded:
			bounds[c] = g.UniformAlloc(env.Clusters[c].P)
		default:
			return nil, fmt.Errorf("multicluster: unknown allocation policy %v", policy)
		}
	}
	return bounds, nil
}

// Verify checks a multi-site schedule: placements reference valid
// sites, durations match the model, staging-aware precedence holds,
// and each site's reservations fit its profile.
func Verify(g *dag.Graph, env Env, s *Schedule, opt Options) error {
	if _, err := env.validate(); err != nil {
		return err
	}
	if s == nil || len(s.Tasks) != g.NumTasks() {
		return fmt.Errorf("multicluster: schedule shape mismatch")
	}
	avails := make([]*profile.Profile, len(env.Clusters))
	for c := range env.Clusters {
		avails[c] = env.Clusters[c].Avail.Clone()
	}
	for t, pl := range s.Tasks {
		if pl.Cluster < 0 || pl.Cluster >= len(env.Clusters) {
			return fmt.Errorf("multicluster: task %d on unknown cluster %d", t, pl.Cluster)
		}
		site := env.Clusters[pl.Cluster]
		if pl.Procs < 1 || pl.Procs > site.P {
			return fmt.Errorf("multicluster: task %d uses %d of %d processors on %q", t, pl.Procs, site.P, site.Name)
		}
		if pl.Start < env.Now {
			return fmt.Errorf("multicluster: task %d starts before now", t)
		}
		task := g.Task(t)
		if want := model.ExecTime(site.seqOn(task.Seq), task.Alpha, pl.Procs); pl.End-pl.Start != want {
			return fmt.Errorf("multicluster: task %d duration %d, model says %d on %q", t, pl.End-pl.Start, want, site.Name)
		}
		for _, pr := range g.Predecessors(t) {
			f := s.Tasks[pr].End
			if s.Tasks[pr].Cluster != pl.Cluster {
				f += opt.StageDelay
			}
			if f > pl.Start {
				return fmt.Errorf("multicluster: task %d starts at %d before predecessor %d is available at %d", t, pl.Start, pr, f)
			}
		}
		if pl.End > pl.Start {
			if err := avails[pl.Cluster].Reserve(pl.Start, pl.End, pl.Procs); err != nil {
				return fmt.Errorf("multicluster: task %d overcommits %q: %w", t, site.Name, err)
			}
		}
	}
	return nil
}
