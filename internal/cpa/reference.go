package cpa

import (
	"fmt"

	"resched/internal/dag"
	"resched/internal/model"
)

// This file retains the naive allocation-phase implementation that
// Allocate replaced: one full levels() sweep for the stopping
// criterion plus another inside candidate selection, a full area
// re-summation per iteration, and model.Gain evaluated in the inner
// loop. It is the reference oracle for the differential tests
// (differential_test.go), which require the optimized Allocate to
// produce identical allocation vectors over the paper's Table 1
// parameter grid. It is not called on any serving path.

// referenceAllocate is the pre-optimization CPA allocation phase,
// kept verbatim.
func referenceAllocate(g *dag.Graph, p int, rule StopRule) ([]int, error) {
	if p < 1 {
		return nil, fmt.Errorf("cpa: cluster size %d < 1", p)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	alloc := g.UniformAlloc(1)
	exec := make([]float64, g.NumTasks())
	caps := make([]int, g.NumTasks())
	for i := range exec {
		exec[i] = model.ExecSeconds(g.Task(i).Seq, g.Task(i).Alpha, 1)
		caps[i] = p
		if rule == StopStringent {
			caps[i] = allocCap(g.Task(i).Alpha, p)
		}
	}

	tcp, ta := pressure(g, topo, alloc, exec, p)
	for tcp > ta {
		t := bestCandidate(g, topo, alloc, exec, caps)
		if t < 0 {
			break // every critical-path task is at its allocation cap
		}
		alloc[t]++
		exec[t] = model.ExecSeconds(g.Task(t).Seq, g.Task(t).Alpha, alloc[t])
		tcp, ta = pressure(g, topo, alloc, exec, p)
	}
	return alloc, nil
}

// levels computes float bottom and top levels over a fixed topological
// order.
func levels(g *dag.Graph, topo []int, exec []float64) (bl, tl []float64) {
	n := g.NumTasks()
	bl = make([]float64, n)
	tl = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		var best float64
		for _, s := range g.Successors(t) {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[t] = exec[t] + best
	}
	for _, t := range topo {
		for _, p := range g.Predecessors(t) {
			if v := tl[p] + exec[p]; v > tl[t] {
				tl[t] = v
			}
		}
	}
	return bl, tl
}

// pressure computes (T_CP, T_A) for the current allocation: the
// critical path length and the average per-processor work, in
// fractional seconds.
func pressure(g *dag.Graph, topo []int, alloc []int, exec []float64, p int) (float64, float64) {
	bl, _ := levels(g, topo, exec)
	var cp float64
	for _, v := range bl {
		if v > cp {
			cp = v
		}
	}
	var area float64
	for i, m := range alloc {
		area += float64(m) * exec[i]
	}
	return cp, area / float64(p)
}

// bestCandidate returns the critical-path task with the largest
// per-processor gain whose allocation can still grow within its cap,
// or -1.
func bestCandidate(g *dag.Graph, topo []int, alloc []int, exec []float64, caps []int) int {
	bl, tl := levels(g, topo, exec)
	var cp float64
	for _, v := range bl {
		if v > cp {
			cp = v
		}
	}
	best := -1
	var bestGain float64
	for i := 0; i < g.NumTasks(); i++ {
		if tl[i]+bl[i] < cp-cpTolerance || alloc[i] >= caps[i] {
			continue
		}
		gain := model.Gain(g.Task(i).Seq, g.Task(i).Alpha, alloc[i])
		if best < 0 || gain > bestGain {
			best, bestGain = i, gain
		}
	}
	return best
}
