package cpa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
)

// chain builds t0 -> t1 -> ... -> t{n-1}, all with the given seq/alpha.
func chain(n int, seq model.Duration, alpha float64) *dag.Graph {
	g := dag.New(n)
	for i := 0; i < n; i++ {
		g.AddTask(dag.Task{Seq: seq, Alpha: alpha})
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i)
	}
	return g
}

// fork builds one source fanning out to n independent tasks joined by
// one sink.
func fork(n int, seq model.Duration, alpha float64) *dag.Graph {
	g := dag.New(n + 2)
	src := g.AddTask(dag.Task{Seq: seq, Alpha: alpha})
	ids := make([]int, n)
	for i := range ids {
		ids[i] = g.AddTask(dag.Task{Seq: seq, Alpha: alpha})
		g.MustAddEdge(src, ids[i])
	}
	sink := g.AddTask(dag.Task{Seq: seq, Alpha: alpha})
	for _, id := range ids {
		g.MustAddEdge(id, sink)
	}
	return g
}

func TestAllocateChainUsesManyProcs(t *testing.T) {
	// A chain has no task parallelism: every task is on the critical
	// path and T_A is tiny, so CPA should grow allocations well past 1.
	g := chain(5, model.Hour, 0.05)
	alloc, err := Allocate(g, 32, StopClassic)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range alloc {
		if m < 2 {
			t.Fatalf("chain task %d allocated %d procs under classic CPA; want > 1 (alloc %v)", i, m, alloc)
		}
		if m > 32 {
			t.Fatalf("allocation %d exceeds cluster", m)
		}
	}
}

func TestAllocateStringentHonorsEfficiencyCap(t *testing.T) {
	// A chain of poorly-scaling tasks (alpha = 0.5) on a big machine:
	// classic CPA keeps growing allocations, the stringent rule stops
	// each task at its efficiency cap.
	g := chain(5, model.Hour, 0.5)
	cap := allocCap(0.5, 64)
	if cap != 7 {
		t.Fatalf("allocCap(0.5, 64) = %d, want 7 at MinEfficiency 0.25", cap)
	}
	stringent, err := Allocate(g, 64, StopStringent)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := Allocate(g, 64, StopClassic)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stringent {
		if stringent[i] > cap {
			t.Fatalf("stringent alloc %v exceeds efficiency cap %d", stringent, cap)
		}
		if classic[i] <= cap {
			t.Fatalf("classic alloc %v unexpectedly within the cap — test premise broken", classic)
		}
	}
}

func TestAllocCapBounds(t *testing.T) {
	if got := allocCap(0, 32); got != 32 {
		t.Fatalf("alpha=0 cap = %d, want p", got)
	}
	// Fully serial task: (1/0.25 - 1 + 1)/1 = 4. Efficiency 1/m >= 0.25
	// indeed holds up to m = 4.
	if got := allocCap(1, 32); got != 4 {
		t.Fatalf("allocCap(1,32) = %d, want 4", got)
	}
	if got := allocCap(0.9, 2); got < 1 || got > 2 {
		t.Fatalf("cap %d outside [1,p]", got)
	}
}

// Property: stringent allocations always respect per-task efficiency
// caps, so total work is bounded by seqWork/MinEfficiency.
func TestAllocateStringentEfficiencyFloor(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = rng.Intn(30) + 5
		g := daggen.MustGenerate(spec, rng)
		p := rng.Intn(60) + 4
		alloc, err := Allocate(g, p, StopStringent)
		if err != nil {
			return false
		}
		for i, m := range alloc {
			if m > allocCap(g.Task(i).Alpha, p) {
				return false
			}
			work := model.Work(g.Task(i).Seq, g.Task(i).Alpha, m)
			// Work on m procs must stay within 1/MinEfficiency of the
			// sequential work (plus rounding slack).
			if float64(work) > float64(g.Task(i).Seq)/MinEfficiency+float64(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = rng.Intn(40) + 2
		g := daggen.MustGenerate(spec, rng)
		p := rng.Intn(100) + 1
		alloc, err := Allocate(g, p, StopStringent)
		if err != nil {
			return false
		}
		for _, m := range alloc {
			if m < 1 || m > p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateSingleProcessorCluster(t *testing.T) {
	g := fork(4, model.Hour, 0.1)
	alloc, err := Allocate(g, 1, StopClassic)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range alloc {
		if m != 1 {
			t.Fatalf("p=1 allocation %v", alloc)
		}
	}
}

func TestAllocateErrors(t *testing.T) {
	g := chain(3, model.Hour, 0.1)
	if _, err := Allocate(g, 0, StopClassic); err == nil {
		t.Fatal("p=0 accepted")
	}
	bad := dag.New(2)
	bad.AddTask(dag.Task{Seq: 1})
	bad.AddTask(dag.Task{Seq: 1})
	bad.MustAddEdge(0, 1)
	bad.MustAddEdge(1, 0)
	if _, err := Allocate(bad, 4, StopClassic); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestPriorityOrderRespectsPrecedence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = rng.Intn(40) + 2
		spec.Jump = rng.Intn(4) + 1
		g := daggen.MustGenerate(spec, rng)
		exec, _ := g.ExecTimes(g.UniformAlloc(1))
		order, err := PriorityOrder(g, exec)
		if err != nil {
			return false
		}
		pos := make([]int, g.NumTasks())
		for i, t := range order {
			pos[t] = i
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.Successors(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// validateDedicated checks a dedicated-cluster schedule: precedence,
// capacity, and allocation bounds.
func validateDedicated(t *testing.T, g *dag.Graph, s *Schedule, p int, origin model.Time) {
	t.Helper()
	exec, err := g.ExecTimes(s.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumTasks(); i++ {
		if s.Start[i] < 0 {
			continue
		}
		if s.Start[i] < origin {
			t.Fatalf("task %d starts at %d before origin %d", i, s.Start[i], origin)
		}
		if s.Finish[i] != s.Start[i]+exec[i] {
			t.Fatalf("task %d finish %d != start %d + exec %d", i, s.Finish[i], s.Start[i], exec[i])
		}
		for _, pr := range g.Predecessors(i) {
			if s.Finish[pr] > s.Start[i] {
				t.Fatalf("task %d starts at %d before predecessor %d finishes at %d", i, s.Start[i], pr, s.Finish[pr])
			}
		}
	}
	// Capacity: sweep events.
	type ev struct {
		t     model.Time
		delta int
	}
	var evs []ev
	for i := range s.Start {
		if s.Start[i] < 0 || exec[i] == 0 {
			continue
		}
		evs = append(evs, ev{s.Start[i], s.Alloc[i]}, ev{s.Finish[i], -s.Alloc[i]})
	}
	// Order events by time, releases first.
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			if evs[j].t < evs[i].t || (evs[j].t == evs[i].t && evs[j].delta < evs[i].delta) {
				evs[i], evs[j] = evs[j], evs[i]
			}
		}
	}
	used := 0
	for _, e := range evs {
		used += e.delta
		if used > p {
			t.Fatalf("capacity exceeded: %d > %d at time %d", used, p, e.t)
		}
	}
}

func TestListScheduleChain(t *testing.T) {
	g := chain(4, model.Hour, 0)
	alloc := g.UniformAlloc(2)
	s, err := ListSchedule(g, alloc, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	validateDedicated(t, g, s, 4, 1000)
	// A chain serializes: each task starts when the previous finishes.
	for i := 1; i < 4; i++ {
		if s.Start[i] != s.Finish[i-1] {
			t.Fatalf("chain not tight: start[%d]=%d finish[%d]=%d", i, s.Start[i], i-1, s.Finish[i-1])
		}
	}
	if s.Makespan(1000) != 1000+4*1800 {
		t.Fatalf("makespan = %d", s.Makespan(1000))
	}
}

func TestListScheduleForkParallel(t *testing.T) {
	g := fork(4, model.Hour, 0)
	alloc := g.UniformAlloc(1)
	s, err := ListSchedule(g, alloc, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	validateDedicated(t, g, s, 4, 0)
	// The four branches all fit simultaneously.
	for i := 1; i <= 4; i++ {
		if s.Start[i] != s.Finish[0] {
			t.Fatalf("branch %d start %d, want %d", i, s.Start[i], s.Finish[0])
		}
	}
}

func TestListScheduleClampsAlloc(t *testing.T) {
	g := chain(2, model.Hour, 0)
	alloc := []int{8, 8}
	s, err := ListSchedule(g, alloc, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range s.Alloc {
		if m != 4 {
			t.Fatalf("task %d alloc %d, want clamped to 4", i, m)
		}
	}
	validateDedicated(t, g, s, 4, 0)
}

func TestListScheduleSubset(t *testing.T) {
	g := chain(4, model.Hour, 0)
	include := []bool{true, true, false, false}
	s, err := ListScheduleSubset(g, g.UniformAlloc(1), 2, 500, include)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] < 0 || s.Start[1] < 0 {
		t.Fatal("included tasks not scheduled")
	}
	if s.Start[2] != -1 || s.Start[3] != -1 {
		t.Fatal("excluded tasks scheduled")
	}
	// A subset not closed under predecessors errors.
	if _, err := ListScheduleSubset(g, g.UniformAlloc(1), 2, 0, []bool{false, true, false, false}); err == nil {
		t.Fatal("non-prefix subset accepted")
	}
}

func TestListScheduleErrors(t *testing.T) {
	g := chain(2, model.Hour, 0)
	if _, err := ListSchedule(g, []int{1}, 2, 0); err == nil {
		t.Fatal("short alloc accepted")
	}
	if _, err := ListSchedule(g, []int{1, 0}, 2, 0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := ListSchedule(g, g.UniformAlloc(1), 0, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := ListScheduleSubset(g, g.UniformAlloc(1), 2, 0, []bool{true}); err == nil {
		t.Fatal("short include vector accepted")
	}
}

// Property: list schedules over random DAGs are always valid, and the
// makespan is at least the critical path under the same allocations.
func TestListScheduleRandomValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = rng.Intn(40) + 2
		spec.Jump = rng.Intn(4) + 1
		g := daggen.MustGenerate(spec, rng)
		p := rng.Intn(30) + 1
		alloc, err := Allocate(g, p, StopStringent)
		if err != nil {
			return false
		}
		s, err := ListSchedule(g, alloc, p, 0)
		if err != nil {
			return false
		}
		exec, _ := g.ExecTimes(s.Alloc)
		cp, _ := g.CriticalPathLength(exec)
		if s.Makespan(0) < cp {
			return false
		}
		// Also run the full validator via a sub-test trick: replicate
		// precedence check here.
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.Successors(u) {
				if s.Finish[u] > s.Start[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStopRuleString(t *testing.T) {
	if StopClassic.String() != "classic" || StopStringent.String() != "stringent" {
		t.Fatal("StopRule.String broken")
	}
	if StopRule(9).String() == "" {
		t.Fatal("unknown StopRule should still stringify")
	}
}
