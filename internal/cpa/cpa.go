// Package cpa implements the CPA (Critical Path and Area-based)
// mixed-parallel scheduling algorithm of Radulescu & van Gemund (ICPP
// 2001), which the paper's heuristics reuse in three roles: computing
// task bottom levels (BL_CPA / BL_CPAR), bounding task allocations
// (BD_CPA / BD_CPAR), and producing the reference start times that
// guide the resource-conservative deadline algorithms (DL_RC_*).
//
// CPA has two phases. The allocation phase starts every task at one
// processor and repeatedly grants one more processor to the
// critical-path task that profits most, until the critical path length
// T_CP no longer exceeds the average area T_A = (1/P)·Σ m(t)·T(t,m(t)).
// The mapping phase list-schedules tasks in decreasing bottom-level
// order onto the cluster.
//
// The paper uses the improved stopping criterion of N'Takpé, Suter &
// Casanova (ISPDC 2007), which curbs CPA's tendency to over-allocate.
// That paper's exact rule is unavailable offline; StopStringent
// reproduces its effect by capping each task's allocation at the point
// where its parallel efficiency would drop below MinEfficiency (see
// DESIGN.md, Section 6). The classic rule remains available as
// StopClassic for ablation.
//
// The allocation phase evaluates T_CP and T_A on the unrounded
// (fractional-second) Amdahl model: whole-second rounding creates
// plateaus and spurious critical-path ties that would make marginal
// gains vanish artificially. Rounding is applied afterwards, when
// schedules are built.
package cpa

import (
	"fmt"
	"sort"

	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

// StopRule selects the allocation-phase stopping criterion.
type StopRule int

const (
	// StopStringent runs the classic loop but additionally refuses to
	// grow a task past the allocation where its parallel efficiency
	// T(1)/(m*T(m)) would fall below MinEfficiency. This limits
	// allocations the way the improved criterion of [34] does and is
	// the library default — what the paper means by "CPA".
	StopStringent StopRule = iota
	// StopClassic is the original CPA rule: iterate while T_CP > T_A,
	// growing critical-path tasks without an efficiency floor.
	StopClassic
)

// MinEfficiency is the parallel-efficiency floor enforced by
// StopStringent. Under Amdahl's law a task's efficiency on m
// processors is 1/(alpha*m + 1 - alpha), so the floor translates to a
// per-task allocation cap of (1/MinEfficiency - 1 + alpha)/alpha
// processors; fully parallel tasks (alpha = 0) are never capped
// because their work does not grow with m.
const MinEfficiency = 0.25

func (r StopRule) String() string {
	switch r {
	case StopStringent:
		return "stringent"
	case StopClassic:
		return "classic"
	default:
		return fmt.Sprintf("StopRule(%d)", int(r))
	}
}

// cpTolerance absorbs float summation noise when testing whether a
// task lies on the critical path (tl + bl == T_CP up to rounding).
const cpTolerance = 1e-6

// Allocate runs the CPA allocation phase for a cluster of p processors
// and returns the per-task processor counts, each in [1, p].
func Allocate(g *dag.Graph, p int, rule StopRule) ([]int, error) {
	if p < 1 {
		return nil, fmt.Errorf("cpa: cluster size %d < 1", p)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	alloc := g.UniformAlloc(1)
	exec := make([]float64, g.NumTasks())
	caps := make([]int, g.NumTasks())
	for i := range exec {
		exec[i] = model.ExecSeconds(g.Task(i).Seq, g.Task(i).Alpha, 1)
		caps[i] = p
		if rule == StopStringent {
			caps[i] = allocCap(g.Task(i).Alpha, p)
		}
	}

	tcp, ta := pressure(g, topo, alloc, exec, p)
	for tcp > ta {
		t := bestCandidate(g, topo, alloc, exec, caps)
		if t < 0 {
			break // every critical-path task is at its allocation cap
		}
		alloc[t]++
		exec[t] = model.ExecSeconds(g.Task(t).Seq, g.Task(t).Alpha, alloc[t])
		tcp, ta = pressure(g, topo, alloc, exec, p)
	}
	return alloc, nil
}

// allocCap returns the largest allocation keeping a task's Amdahl
// efficiency at or above MinEfficiency, clamped to [1, p].
func allocCap(alpha float64, p int) int {
	if alpha <= 0 {
		return p
	}
	m := int((1/MinEfficiency - 1 + alpha) / alpha)
	if m < 1 {
		m = 1
	}
	if m > p {
		m = p
	}
	return m
}

// levels computes float bottom and top levels over a fixed topological
// order.
func levels(g *dag.Graph, topo []int, exec []float64) (bl, tl []float64) {
	n := g.NumTasks()
	bl = make([]float64, n)
	tl = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		var best float64
		for _, s := range g.Successors(t) {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[t] = exec[t] + best
	}
	for _, t := range topo {
		for _, p := range g.Predecessors(t) {
			if v := tl[p] + exec[p]; v > tl[t] {
				tl[t] = v
			}
		}
	}
	return bl, tl
}

// pressure computes (T_CP, T_A) for the current allocation: the
// critical path length and the average per-processor work, in
// fractional seconds.
func pressure(g *dag.Graph, topo []int, alloc []int, exec []float64, p int) (float64, float64) {
	bl, _ := levels(g, topo, exec)
	var cp float64
	for _, v := range bl {
		if v > cp {
			cp = v
		}
	}
	var area float64
	for i, m := range alloc {
		area += float64(m) * exec[i]
	}
	return cp, area / float64(p)
}

// bestCandidate returns the critical-path task with the largest
// per-processor gain whose allocation can still grow within its cap,
// or -1.
func bestCandidate(g *dag.Graph, topo []int, alloc []int, exec []float64, caps []int) int {
	bl, tl := levels(g, topo, exec)
	var cp float64
	for _, v := range bl {
		if v > cp {
			cp = v
		}
	}
	best := -1
	var bestGain float64
	for i := 0; i < g.NumTasks(); i++ {
		if tl[i]+bl[i] < cp-cpTolerance || alloc[i] >= caps[i] {
			continue
		}
		gain := model.Gain(g.Task(i).Seq, g.Task(i).Alpha, alloc[i])
		if best < 0 || gain > bestGain {
			best, bestGain = i, gain
		}
	}
	return best
}

// Schedule is a dedicated-cluster schedule produced by the CPA mapping
// phase: per-task start and finish times and allocations. Tasks
// excluded from a subset schedule carry Start = Finish = -1.
type Schedule struct {
	Start  []model.Time
	Finish []model.Time
	Alloc  []int
}

// Makespan returns the latest finish time across scheduled tasks, or
// the origin if none were scheduled.
func (s *Schedule) Makespan(origin model.Time) model.Time {
	m := origin
	for _, f := range s.Finish {
		if f > m {
			m = f
		}
	}
	return m
}

// ListSchedule runs the CPA mapping phase: tasks are scheduled in
// decreasing bottom-level order on a dedicated cluster of p processors
// free from origin onward, each task at min(alloc, p) processors, at
// the earliest time its predecessors have finished and enough
// processors are free.
func ListSchedule(g *dag.Graph, alloc []int, p int, origin model.Time) (*Schedule, error) {
	return ListScheduleSubset(g, alloc, p, origin, nil)
}

// ListScheduleSubset is ListSchedule restricted to the tasks marked in
// include (nil means all tasks). The included set must be closed under
// predecessors: scheduling a task whose predecessor is excluded is an
// error. This is what the resource-conservative deadline algorithms
// need — a CPA reference schedule of the not-yet-scheduled "upper"
// part of the DAG.
func ListScheduleSubset(g *dag.Graph, alloc []int, p int, origin model.Time, include []bool) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("cpa: cluster size %d < 1", p)
	}
	n := g.NumTasks()
	if len(alloc) != n {
		return nil, fmt.Errorf("cpa: allocation vector has %d entries for %d tasks", len(alloc), n)
	}
	if include != nil && len(include) != n {
		return nil, fmt.Errorf("cpa: include vector has %d entries for %d tasks", len(include), n)
	}
	clamped := make([]int, n)
	for i, m := range alloc {
		if m < 1 {
			return nil, fmt.Errorf("cpa: task %d allocated %d processors", i, m)
		}
		if m > p {
			m = p
		}
		clamped[i] = m
	}
	exec, err := g.ExecTimes(clamped)
	if err != nil {
		return nil, err
	}
	order, err := PriorityOrder(g, exec)
	if err != nil {
		return nil, err
	}

	sched := &Schedule{
		Start:  make([]model.Time, n),
		Finish: make([]model.Time, n),
		Alloc:  clamped,
	}
	for i := range sched.Start {
		sched.Start[i], sched.Finish[i] = -1, -1
	}
	avail := profile.New(p, origin)
	for _, t := range order {
		if include != nil && !include[t] {
			continue
		}
		ready := origin
		for _, pr := range g.Predecessors(t) {
			if include != nil && !include[pr] {
				return nil, fmt.Errorf("cpa: task %d included but predecessor %d excluded", t, pr)
			}
			if sched.Finish[pr] > ready {
				ready = sched.Finish[pr]
			}
		}
		start := avail.EarliestFit(clamped[t], exec[t], ready)
		if exec[t] > 0 {
			if err := avail.Reserve(start, start+exec[t], clamped[t]); err != nil {
				return nil, fmt.Errorf("cpa: reserving task %d: %w", t, err)
			}
		}
		sched.Start[t], sched.Finish[t] = start, start+exec[t]
	}
	return sched, nil
}

// PriorityOrder returns the task IDs sorted by decreasing bottom level
// under the given execution times, the list-scheduling priority used by
// CPA's mapping phase and by all of the paper's algorithms. With
// positive execution times this order is automatically topological
// (a predecessor's bottom level strictly exceeds its successors');
// zero-time ties are broken by topological position for safety.
func PriorityOrder(g *dag.Graph, exec []model.Duration) ([]int, error) {
	bl, err := g.BottomLevels(exec)
	if err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	topoPos := make([]int, g.NumTasks())
	for i, t := range topo {
		topoPos[t] = i
	}
	order := append([]int(nil), topo...)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if bl[a] != bl[b] {
			return bl[a] > bl[b]
		}
		return topoPos[a] < topoPos[b]
	})
	return order, nil
}
