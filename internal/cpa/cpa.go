// Package cpa implements the CPA (Critical Path and Area-based)
// mixed-parallel scheduling algorithm of Radulescu & van Gemund (ICPP
// 2001), which the paper's heuristics reuse in three roles: computing
// task bottom levels (BL_CPA / BL_CPAR), bounding task allocations
// (BD_CPA / BD_CPAR), and producing the reference start times that
// guide the resource-conservative deadline algorithms (DL_RC_*).
//
// CPA has two phases. The allocation phase starts every task at one
// processor and repeatedly grants one more processor to the
// critical-path task that profits most, until the critical path length
// T_CP no longer exceeds the average area T_A = (1/P)·Σ m(t)·T(t,m(t)).
// The mapping phase list-schedules tasks in decreasing bottom-level
// order onto the cluster.
//
// The paper uses the improved stopping criterion of N'Takpé, Suter &
// Casanova (ISPDC 2007), which curbs CPA's tendency to over-allocate.
// That paper's exact rule is unavailable offline; StopStringent
// reproduces its effect by capping each task's allocation at the point
// where its parallel efficiency would drop below MinEfficiency (see
// DESIGN.md, Section 6). The classic rule remains available as
// StopClassic for ablation.
//
// The allocation phase evaluates T_CP and T_A on the unrounded
// (fractional-second) Amdahl model: whole-second rounding creates
// plateaus and spurious critical-path ties that would make marginal
// gains vanish artificially. Rounding is applied afterwards, when
// schedules are built.
package cpa

import (
	"fmt"
	"sort"

	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

// StopRule selects the allocation-phase stopping criterion.
type StopRule int

const (
	// StopStringent runs the classic loop but additionally refuses to
	// grow a task past the allocation where its parallel efficiency
	// T(1)/(m*T(m)) would fall below MinEfficiency. This limits
	// allocations the way the improved criterion of [34] does and is
	// the library default — what the paper means by "CPA".
	StopStringent StopRule = iota
	// StopClassic is the original CPA rule: iterate while T_CP > T_A,
	// growing critical-path tasks without an efficiency floor.
	StopClassic
)

// MinEfficiency is the parallel-efficiency floor enforced by
// StopStringent. Under Amdahl's law a task's efficiency on m
// processors is 1/(alpha*m + 1 - alpha), so the floor translates to a
// per-task allocation cap of (1/MinEfficiency - 1 + alpha)/alpha
// processors; fully parallel tasks (alpha = 0) are never capped
// because their work does not grow with m.
const MinEfficiency = 0.25

func (r StopRule) String() string {
	switch r {
	case StopStringent:
		return "stringent"
	case StopClassic:
		return "classic"
	default:
		return fmt.Sprintf("StopRule(%d)", int(r))
	}
}

// cpTolerance absorbs float summation noise when testing whether a
// task lies on the critical path (tl + bl == T_CP up to rounding).
const cpTolerance = 1e-6

// Allocate runs the CPA allocation phase for a cluster of p processors
// and returns the per-task processor counts, each in [1, p].
//
// The refinement loop is incremental: bottom and top levels are
// maintained by worklist propagation from the single task whose
// execution time changed (instead of two full O(V+E) sweeps per
// iteration), the area term Σ m·T(m) is updated in O(1), and each
// task's marginal gain is cached at its current allocation so
// model.Gain never runs in the candidate scan. The retained naive
// implementation (reference.go) is the differential-test oracle:
// both produce identical allocation vectors.
func Allocate(g *dag.Graph, p int, rule StopRule) ([]int, error) {
	if p < 1 {
		return nil, fmt.Errorf("cpa: cluster size %d < 1", p)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	st := newAllocStatePool(g, topo, p, rule, nil)
	for {
		cp := st.criticalPath()
		if !(cp > st.area/float64(p)) {
			break // T_CP no longer exceeds T_A
		}
		t := st.bestCandidate(cp)
		if t < 0 {
			break // every critical-path task is at its allocation cap
		}
		st.grow(t)
	}
	return st.alloc, nil
}

// allocState is the incrementally maintained state of one allocation
// phase run.
type allocState struct {
	g       *dag.Graph
	alloc   []int
	caps    []int
	exec    []float64 // unrounded Amdahl time at the current allocation
	bl, tl  []float64 // float bottom/top levels for the current exec
	maxSucc []float64 // max successor bl (bl[i] = exec[i] + maxSucc[i])
	gain    []float64 // model.Gain at the current allocation
	area    float64   // Σ alloc[i]·exec[i]

	// Adjacency flattened to CSR form: successors of task i are
	// succ[succOff[i]:succOff[i+1]], likewise pred/predOff. The level
	// repairs spend nearly all their time in these scans, and the
	// contiguous layout beats chasing the graph's per-task slices.
	succ, pred       []int32
	succOff, predOff []int32

	// depth is the longest-path depth of each task, which is static
	// across the run (it depends only on the DAG's structure). Every
	// edge strictly increases depth, so draining dirty tasks bucket by
	// bucket — descending for bottom levels, ascending for top levels —
	// recomputes each task exactly once, after everything it depends on
	// is final, without any priority queue.
	//
	// The buckets live in one flat scratch buffer segmented by depth
	// (CSR layout, like the adjacency): depth d's dirty tasks are
	// bucketBuf[depthOff[d] : depthOff[d]+bucketCnt[d]]. The per-depth
	// capacity is exact — a task is marked at most once — and the flat
	// form keeps mark, the hottest bookkeeping op, to two int32 stores
	// instead of an append with its slice-header write-back. Draining
	// depth d never races its own window: repairBL marks only strictly
	// shallower tasks (an edge increases depth) and drainTL only
	// strictly deeper ones.
	depth     []int32
	depthOff  []int32 // tasks-per-depth CSR offsets, len maxDepth+2
	bucketBuf []int32 // flat dirty-task storage, len n
	bucketCnt []int32 // live entries per depth, len maxDepth+1
	inDirty   []bool
	pending   int // total tasks currently marked dirty

	// Parallel-scan state (nil pool means serial; see parallel.go).
	pool     *parPool
	byDepth  [][]int32 // all tasks grouped by depth, for the level sweeps
	partCP   []float64 // per-chunk T_CP partials
	partIdx  []int     // per-chunk candidate partials
	partGain []float64
}

func newAllocStatePool(g *dag.Graph, topo []int, p int, rule StopRule, pool *parPool) *allocState {
	n := g.NumTasks()
	st := &allocState{
		g:       g,
		alloc:   g.UniformAlloc(1),
		caps:    make([]int, n),
		exec:    make([]float64, n),
		bl:      make([]float64, n),
		tl:      make([]float64, n),
		maxSucc: make([]float64, n),
		gain:    make([]float64, n),
		pool:    pool,
	}
	if pool != nil {
		pool.run(n, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				task := g.Task(i)
				st.exec[i] = model.ExecSeconds(task.Seq, task.Alpha, 1)
				st.gain[i] = model.Gain(task.Seq, task.Alpha, 1)
				st.caps[i] = p
				if rule == StopStringent {
					st.caps[i] = allocCap(task.Alpha, p)
				}
			}
		})
	} else {
		for i := 0; i < n; i++ {
			task := g.Task(i)
			st.exec[i] = model.ExecSeconds(task.Seq, task.Alpha, 1)
			st.gain[i] = model.Gain(task.Seq, task.Alpha, 1)
			st.caps[i] = p
			if rule == StopStringent {
				st.caps[i] = allocCap(task.Alpha, p)
			}
		}
	}
	// The area sum stays serial in index order: float addition is not
	// associative, and the serial order is the reference.
	for i := 0; i < n; i++ {
		st.area += st.exec[i] // alloc is uniformly 1
	}

	// CSR adjacency.
	st.succOff = make([]int32, n+1)
	st.predOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		st.succOff[i+1] = st.succOff[i] + int32(len(g.Successors(i)))
		st.predOff[i+1] = st.predOff[i] + int32(len(g.Predecessors(i)))
	}
	st.succ = make([]int32, st.succOff[n])
	st.pred = make([]int32, st.predOff[n])
	for i := 0; i < n; i++ {
		for k, s := range g.Successors(i) {
			st.succ[int(st.succOff[i])+k] = int32(s)
		}
		for k, p := range g.Predecessors(i) {
			st.pred[int(st.predOff[i])+k] = int32(p)
		}
	}

	// Longest-path depths and the per-depth dirty buckets.
	st.depth = make([]int32, n)
	var maxDepth int32
	for _, t := range topo {
		var d int32
		for _, p := range g.Predecessors(t) {
			if st.depth[p]+1 > d {
				d = st.depth[p] + 1
			}
		}
		st.depth[t] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	st.depthOff = make([]int32, maxDepth+2)
	for i := 0; i < n; i++ {
		st.depthOff[st.depth[i]+1]++
	}
	for d := int32(0); d <= maxDepth; d++ {
		st.depthOff[d+1] += st.depthOff[d]
	}
	st.bucketBuf = make([]int32, n)
	st.bucketCnt = make([]int32, maxDepth+1)
	st.inDirty = make([]bool, n)

	// Full initial level sweeps; every later iteration only repairs
	// the sub-DAG reachable from the one task that changed.
	if pool != nil {
		st.byDepth = make([][]int32, maxDepth+1)
		for _, t := range topo {
			st.byDepth[st.depth[t]] = append(st.byDepth[st.depth[t]], int32(t))
		}
		st.partCP = make([]float64, pool.workers)
		st.partIdx = make([]int, pool.workers)
		st.partGain = make([]float64, pool.workers)
		st.parallelInitSweeps()
		return st
	}
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		var best float64
		for _, s := range g.Successors(t) {
			if st.bl[s] > best {
				best = st.bl[s]
			}
		}
		st.maxSucc[t] = best
		st.bl[t] = st.exec[t] + best
	}
	for _, t := range topo {
		for _, p := range g.Predecessors(t) {
			if v := st.tl[p] + st.exec[p]; v > st.tl[t] {
				st.tl[t] = v
			}
		}
	}
	return st
}

// mark flags a task for level recomputation, once.
//
//reschedvet:hotpath
func (st *allocState) mark(t int32) {
	if st.inDirty[t] {
		return
	}
	st.inDirty[t] = true
	d := st.depth[t]
	st.bucketBuf[st.depthOff[d]+st.bucketCnt[d]] = t
	st.bucketCnt[d]++
	st.pending++
}

// criticalPath returns T_CP, the largest bottom level. It must stay a
// leaf loop: it runs once per refinement iteration and the inliner
// keeps it inside Allocate's loop (the parallel path dispatches to
// parallelCriticalPath in AllocateWorkers' own loop instead).
//
//reschedvet:hotpath
func (st *allocState) criticalPath() float64 {
	var cp float64
	for _, v := range st.bl {
		if v > cp {
			cp = v
		}
	}
	return cp
}

// bestCandidate returns the critical-path task with the largest
// per-processor gain whose allocation can still grow within its cap,
// or -1. Gains are read from the cache, never recomputed here. Like
// criticalPath it must stay a leaf loop so it inlines into Allocate.
//
//reschedvet:hotpath
func (st *allocState) bestCandidate(cp float64) int {
	best := -1
	var bestGain float64
	for i := range st.bl {
		if st.tl[i]+st.bl[i] < cp-cpTolerance || st.alloc[i] >= st.caps[i] {
			continue
		}
		if best < 0 || st.gain[i] > bestGain {
			best, bestGain = i, st.gain[i]
		}
	}
	return best
}

// grow grants task t one more processor and repairs every derived
// quantity: its execution time, the area term, its cached gain, and
// the levels of the tasks its change can reach.
//
//reschedvet:hotpath
func (st *allocState) grow(t int) {
	task := st.g.Task(t)
	old := st.exec[t]
	oldContrib := st.tl[t] + old // t's contribution to its successors' tl
	st.alloc[t]++
	st.exec[t] = model.ExecSeconds(task.Seq, task.Alpha, st.alloc[t])
	st.area += float64(st.alloc[t])*st.exec[t] - float64(st.alloc[t]-1)*old
	st.gain[t] = model.Gain(task.Seq, task.Alpha, st.alloc[t])
	st.repairBL(t)
	// Top levels: t's own tl does not depend on exec[t]; only
	// successors for which t attained the incoming maximum can change.
	for _, s := range st.succ[st.succOff[t]:st.succOff[t+1]] {
		if oldContrib == st.tl[s] {
			st.mark(s)
		}
	}
	st.drainTL(st.depth[t] + 1)
}

// repairBL recomputes bottom levels upward from t. Dirty tasks are
// drained in decreasing depth-bucket order, so every successor's bl is
// final when a task is recomputed (tasks of equal depth share no
// edges). A predecessor is marked only when the changed task attained
// its cached successor maximum — execution times only shrink during
// the refinement loop, so a non-maximal successor that shrinks further
// cannot move the max — which keeps the repair frontier to the argmax
// chains instead of the full ancestor cone.
//
//reschedvet:hotpath
func (st *allocState) repairBL(t int) {
	st.mark(int32(t))
	bl, maxSucc := st.bl, st.maxSucc
	for d := st.depth[t]; st.pending > 0; d-- {
		c := st.bucketCnt[d]
		if c == 0 {
			continue
		}
		st.bucketCnt[d] = 0
		st.pending -= int(c)
		off := st.depthOff[d]
		for _, u := range st.bucketBuf[off : off+c] {
			st.inDirty[u] = false
			var best float64
			for _, s := range st.succ[st.succOff[u]:st.succOff[u+1]] {
				if bl[s] > best {
					best = bl[s]
				}
			}
			maxSucc[u] = best
			nb := st.exec[u] + best
			if nb == bl[u] {
				continue
			}
			old := bl[u]
			bl[u] = nb
			for _, p := range st.pred[st.predOff[u]:st.predOff[u+1]] {
				if old == maxSucc[p] {
					st.mark(p)
				}
			}
		}
	}
}

// drainTL recomputes top levels downward from the seeded dirty set, in
// increasing depth-bucket order so every predecessor is final when a
// task is recomputed. For any task with predecessors tl is exactly the
// maximum incoming contribution, so the attainment check needs no
// separate cache: a successor is marked only when the changed task's
// old contribution equals the successor's tl.
//
//reschedvet:hotpath
func (st *allocState) drainTL(from int32) {
	tl, exec := st.tl, st.exec
	for d := from; st.pending > 0; d++ {
		c := st.bucketCnt[d]
		if c == 0 {
			continue
		}
		st.bucketCnt[d] = 0
		st.pending -= int(c)
		off := st.depthOff[d]
		for _, u := range st.bucketBuf[off : off+c] {
			st.inDirty[u] = false
			var nt float64
			for _, p := range st.pred[st.predOff[u]:st.predOff[u+1]] {
				if v := tl[p] + exec[p]; v > nt {
					nt = v
				}
			}
			if nt == tl[u] {
				continue
			}
			oldContrib := tl[u] + exec[u]
			tl[u] = nt
			for _, s := range st.succ[st.succOff[u]:st.succOff[u+1]] {
				if oldContrib == tl[s] {
					st.mark(s)
				}
			}
		}
	}
}

// allocCap returns the largest allocation keeping a task's Amdahl
// efficiency at or above MinEfficiency, clamped to [1, p].
func allocCap(alpha float64, p int) int {
	if alpha <= 0 {
		return p
	}
	m := int((1/MinEfficiency - 1 + alpha) / alpha)
	if m < 1 {
		m = 1
	}
	if m > p {
		m = p
	}
	return m
}

// Schedule is a dedicated-cluster schedule produced by the CPA mapping
// phase: per-task start and finish times and allocations. Tasks
// excluded from a subset schedule carry Start = Finish = -1.
type Schedule struct {
	Start  []model.Time
	Finish []model.Time
	Alloc  []int
}

// Makespan returns the latest finish time across scheduled tasks, or
// the origin if none were scheduled.
func (s *Schedule) Makespan(origin model.Time) model.Time {
	m := origin
	for _, f := range s.Finish {
		if f > m {
			m = f
		}
	}
	return m
}

// ListSchedule runs the CPA mapping phase: tasks are scheduled in
// decreasing bottom-level order on a dedicated cluster of p processors
// free from origin onward, each task at min(alloc, p) processors, at
// the earliest time its predecessors have finished and enough
// processors are free.
func ListSchedule(g *dag.Graph, alloc []int, p int, origin model.Time) (*Schedule, error) {
	return ListScheduleSubset(g, alloc, p, origin, nil)
}

// ListScheduleSubset is ListSchedule restricted to the tasks marked in
// include (nil means all tasks). The included set must be closed under
// predecessors: scheduling a task whose predecessor is excluded is an
// error. This is what the resource-conservative deadline algorithms
// need — a CPA reference schedule of the not-yet-scheduled "upper"
// part of the DAG.
func ListScheduleSubset(g *dag.Graph, alloc []int, p int, origin model.Time, include []bool) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("cpa: cluster size %d < 1", p)
	}
	n := g.NumTasks()
	if len(alloc) != n {
		return nil, fmt.Errorf("cpa: allocation vector has %d entries for %d tasks", len(alloc), n)
	}
	if include != nil && len(include) != n {
		return nil, fmt.Errorf("cpa: include vector has %d entries for %d tasks", len(include), n)
	}
	clamped := make([]int, n)
	for i, m := range alloc {
		if m < 1 {
			return nil, fmt.Errorf("cpa: task %d allocated %d processors", i, m)
		}
		if m > p {
			m = p
		}
		clamped[i] = m
	}
	exec, err := g.ExecTimes(clamped)
	if err != nil {
		return nil, err
	}
	order, err := PriorityOrder(g, exec)
	if err != nil {
		return nil, err
	}

	sched := &Schedule{
		Start:  make([]model.Time, n),
		Finish: make([]model.Time, n),
		Alloc:  clamped,
	}
	for i := range sched.Start {
		sched.Start[i], sched.Finish[i] = -1, -1
	}
	avail := profile.New(p, origin)
	for _, t := range order {
		if include != nil && !include[t] {
			continue
		}
		ready := origin
		for _, pr := range g.Predecessors(t) {
			if include != nil && !include[pr] {
				return nil, fmt.Errorf("cpa: task %d included but predecessor %d excluded", t, pr)
			}
			if sched.Finish[pr] > ready {
				ready = sched.Finish[pr]
			}
		}
		start := avail.EarliestFit(clamped[t], exec[t], ready)
		if exec[t] > 0 {
			if err := avail.Reserve(start, start+exec[t], clamped[t]); err != nil {
				return nil, fmt.Errorf("cpa: reserving task %d: %w", t, err)
			}
		}
		sched.Start[t], sched.Finish[t] = start, start+exec[t]
	}
	return sched, nil
}

// PriorityOrder returns the task IDs sorted by decreasing bottom level
// under the given execution times, the list-scheduling priority used by
// CPA's mapping phase and by all of the paper's algorithms. With
// positive execution times this order is automatically topological
// (a predecessor's bottom level strictly exceeds its successors');
// zero-time ties are broken by topological position for safety.
func PriorityOrder(g *dag.Graph, exec []model.Duration) ([]int, error) {
	bl, err := g.BottomLevels(exec)
	if err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	topoPos := make([]int, g.NumTasks())
	for i, t := range topo {
		topoPos[t] = i
	}
	order := append([]int(nil), topo...)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if bl[a] != bl[b] {
			return bl[a] > bl[b]
		}
		return topoPos[a] < topoPos[b]
	})
	return order, nil
}
