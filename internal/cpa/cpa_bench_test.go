package cpa

import (
	"fmt"
	"math/rand"
	"testing"

	"resched/internal/daggen"
)

// BenchmarkAllocate tracks the allocation phase's cost across cluster
// sizes — the P and P' factors of the paper's Table 8 complexities —
// for both stopping rules.
func BenchmarkAllocate(b *testing.B) {
	g := daggen.MustGenerate(daggen.Default(), rand.New(rand.NewSource(1)))
	for _, p := range []int{32, 256, 1152} {
		for _, rule := range []StopRule{StopStringent, StopClassic} {
			b.Run(fmt.Sprintf("p=%d/%v", p, rule), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Allocate(g, p, rule); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAllocateWide tracks the allocation phase on width-heavy
// DAGs, where the refinement loop runs many iterations and the cost of
// recomputing levels from scratch dominates. This is the headline
// hot-path benchmark of the PR 2 perf work (see BENCH_PR2.json).
func BenchmarkAllocateWide(b *testing.B) {
	for _, n := range []int{200, 400} {
		spec := daggen.Default()
		spec.N = n
		spec.Width = 0.8
		g := daggen.MustGenerate(spec, rand.New(rand.NewSource(3)))
		for _, p := range []int{256, 1152} {
			b.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Allocate(g, p, StopStringent); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkListSchedule measures the mapping phase, the building block
// of the DL_RC reference schedules recomputed per task.
func BenchmarkListSchedule(b *testing.B) {
	for _, n := range []int{50, 100} {
		spec := daggen.Default()
		spec.N = n
		g := daggen.MustGenerate(spec, rand.New(rand.NewSource(2)))
		alloc, err := Allocate(g, 128, StopStringent)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ListSchedule(g, alloc, 128, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocateParallel puts the bounded worker pool against the
// serial path on a DAG wide enough to clear parallelThreshold — the
// regime AllocateWorkers exists for. w=1 is the serial baseline (the
// exact Allocate code path), so the sub-benchmark ratio is the
// parallel speedup at provably unchanged output.
func BenchmarkAllocateParallel(b *testing.B) {
	spec := daggen.Default()
	spec.N = 4096
	spec.Width = 0.9
	g := daggen.MustGenerate(spec, rand.New(rand.NewSource(5)))
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AllocateWorkers(g, 1152, StopStringent, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
