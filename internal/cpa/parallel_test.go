package cpa

import (
	"fmt"
	"math/rand"
	"testing"

	"resched/internal/daggen"
)

// forceParallel drops the size gates so even tiny grid DAGs exercise
// the full chunked machinery (pool spawn, level fan-out, partial-merge
// paths), then restores them.
func forceParallel(t *testing.T) {
	t.Helper()
	oldThreshold, oldChunk := parallelThreshold, minChunk
	parallelThreshold, minChunk = 1, 1
	t.Cleanup(func() { parallelThreshold, minChunk = oldThreshold, oldChunk })
}

// TestAllocateWorkersMatchesReference is the bit-identity guarantee
// behind the parallel allocation phase: over the paper's parameter
// grid (40 specs x 2 seeds x 2 cluster sizes x both stopping rules x 3
// worker counts = 960 cases, far past the 200-case floor), every
// chunked scan must reproduce the naive reference exactly. The size
// gates are forced off so the grid's small DAGs actually take the
// parallel path.
func TestAllocateWorkersMatchesReference(t *testing.T) {
	forceParallel(t)
	cases := 0
	for _, spec := range daggen.ParamGrid() {
		for seed := int64(1); seed <= 2; seed++ {
			g := daggen.MustGenerate(spec, rand.New(rand.NewSource(seed)))
			for _, p := range []int{16, 193} {
				for _, rule := range []StopRule{StopStringent, StopClassic} {
					want, err := referenceAllocate(g, p, rule)
					if err != nil {
						t.Fatalf("referenceAllocate(n=%d, p=%d, %v): %v", spec.N, p, rule, err)
					}
					for _, workers := range []int{2, 3, 8} {
						got, err := AllocateWorkers(g, p, rule, workers)
						if err != nil {
							t.Fatalf("AllocateWorkers(n=%d, p=%d, %v, w=%d): %v", spec.N, p, rule, workers, err)
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("n=%d width=%.1f seed=%d p=%d rule=%v workers=%d: task %d allocated %d, reference %d",
									spec.N, spec.Width, seed, p, rule, workers, i, got[i], want[i])
							}
						}
						cases++
					}
				}
			}
		}
	}
	if cases < 200 {
		t.Fatalf("only %d differential cases; the corpus should cover at least 200", cases)
	}
}

// TestAllocateWorkersWideMatchesSerial covers the regime the pool is
// actually built for — DAGs past the real parallelThreshold, where the
// gates stay at their production values — against the serial Allocate
// (itself differentially tied to the reference).
func TestAllocateWorkersWideMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-DAG differential check is slow under -short")
	}
	spec := daggen.Default()
	spec.N = parallelThreshold + 500
	spec.Width = 0.9
	g := daggen.MustGenerate(spec, rand.New(rand.NewSource(11)))
	for _, p := range []int{64, 1152} {
		for _, workers := range []int{2, 4, 64} {
			t.Run(fmt.Sprintf("p=%d/w=%d", p, workers), func(t *testing.T) {
				want, err := Allocate(g, p, StopStringent)
				if err != nil {
					t.Fatal(err)
				}
				got, err := AllocateWorkers(g, p, StopStringent, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("task %d allocated %d, serial %d", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestAllocateWorkersSerialFallbacks: workers<=1 and undersized DAGs
// must not spawn a pool at all — the state carries no parallel scratch.
func TestAllocateWorkersSerialFallbacks(t *testing.T) {
	spec := daggen.Default()
	spec.N = 50
	g := daggen.MustGenerate(spec, rand.New(rand.NewSource(1)))
	want, err := Allocate(g, 16, StopStringent)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 8} { // 8 still serial: n=50 < threshold
		got, err := AllocateWorkers(g, 16, StopStringent, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: task %d allocated %d, serial %d", workers, i, got[i], want[i])
			}
		}
	}
}
