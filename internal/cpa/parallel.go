// Parallel allocation-phase scans. The CPA refinement loop is
// inherently sequential — each grant depends on the previous one — but
// its per-iteration work is three data-parallel passes over all tasks
// (the T_CP max, the candidate argmax, and at setup the per-level
// sweeps), which dominate on wide DAGs. AllocateWorkers fans exactly
// those passes across a bounded worker set and keeps everything else
// byte-for-byte the serial code path.
//
// Bit-identity with Allocate (enforced by the differential suite in
// parallel_test.go) rests on three observations:
//
//   - float64 max is order-independent, so a chunked T_CP scan merged
//     in any order equals the serial scan;
//   - the candidate argmax breaks ties toward the lowest task index
//     (strict > comparison); merging per-chunk winners in ascending
//     chunk order with the same strict rule preserves that;
//   - within one depth level no two tasks share an edge, so the
//     initial bottom/top-level sweeps can compute a whole level in
//     parallel from the finished neighboring levels, performing the
//     identical float operations per task in the identical successor /
//     predecessor order. The area term is summed serially in index
//     order because float addition is NOT associative.
//
// The incremental repairs (repairBL/drainTL) stay serial: their dirty
// frontier is a handful of tasks on the argmax chains, far below any
// profitable fan-out size — see DESIGN.md §14.
package cpa

import (
	"fmt"
	"sync"

	"resched/internal/dag"
)

// parallelThreshold gates the parallel machinery on total task count:
// a DAG smaller than this never pays for worker spawn or chunk
// hand-off. Variable so the differential tests can force the parallel
// path onto tiny DAGs.
var parallelThreshold = 2048

// minChunk is the smallest per-worker chunk worth a channel hand-off;
// scans shorter than two chunks run inline on the calling goroutine.
// Variable for the same testing reason.
var minChunk = 512

// maxWorkers bounds the worker set regardless of the caller's ask.
const maxWorkers = 64

// AllocateWorkers is Allocate with the per-iteration scans and the
// initial level sweeps fanned across up to `workers` goroutines
// (including the calling one). workers <= 1 — or any DAG smaller than
// the parallel threshold — takes exactly the serial path. The
// allocation vector is bit-identical to Allocate's for every worker
// count.
func AllocateWorkers(g *dag.Graph, p int, rule StopRule, workers int) ([]int, error) {
	if workers > maxWorkers {
		workers = maxWorkers
	}
	if workers <= 1 || g.NumTasks() < parallelThreshold {
		// The serial path goes through Allocate itself, whose loop
		// keeps the per-iteration scans inlined — a dispatch branch
		// inside criticalPath/bestCandidate would de-inline them and
		// tax every serial caller for the parallel option.
		return Allocate(g, p, rule)
	}
	if p < 1 {
		return nil, fmt.Errorf("cpa: cluster size %d < 1", p)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	pool := newParPool(workers)
	defer pool.close()
	st := newAllocStatePool(g, topo, p, rule, pool)
	for {
		cp := st.parallelCriticalPath()
		if !(cp > st.area/float64(p)) {
			break // T_CP no longer exceeds T_A
		}
		t := st.parallelBestCandidate(cp)
		if t < 0 {
			break // every critical-path task is at its allocation cap
		}
		st.grow(t)
	}
	return st.alloc, nil
}

// parPool is a bounded worker set that lives for one AllocateWorkers
// call. Chunks are handed off on a single channel and completions
// collected on another; result slots are keyed by chunk index, so the
// merge order — and therefore the result — does not depend on which
// worker ran which chunk.
type parPool struct {
	workers int // including the calling goroutine
	jobs    chan parJob
	fin     chan struct{}
	wg      sync.WaitGroup
}

type parJob struct {
	lo, hi, slot int
	fn           func(lo, hi, slot int)
}

func newParPool(workers int) *parPool {
	p := &parPool{
		workers: workers,
		jobs:    make(chan parJob, workers),
		fin:     make(chan struct{}, workers),
	}
	p.wg.Add(workers - 1)
	for i := 0; i < workers-1; i++ {
		go p.worker()
	}
	return p
}

func (p *parPool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		j.fn(j.lo, j.hi, j.slot)
		p.fin <- struct{}{}
	}
}

// close releases the workers and joins them; the pool is unusable
// afterwards.
func (p *parPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// run splits [0, n) into at most p.workers contiguous chunks of at
// least minChunk elements, runs fn(lo, hi, slot) for each — chunk 0 on
// the calling goroutine, the rest on the pool — and returns the number
// of chunks after every one has finished. fn must only write state
// owned by its [lo, hi) range or its slot.
func (p *parPool) run(n int, fn func(lo, hi, slot int)) int {
	k := n / minChunk
	if k > p.workers {
		k = p.workers
	}
	if k <= 1 {
		fn(0, n, 0)
		return 1
	}
	size := (n + k - 1) / k
	k = (n + size - 1) / size // rounding can leave fewer non-empty chunks
	for slot := 1; slot < k; slot++ {
		lo := slot * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		p.jobs <- parJob{lo: lo, hi: hi, slot: slot, fn: fn}
	}
	fn(0, size, 0)
	for i := 1; i < k; i++ {
		<-p.fin
	}
	return k
}

// scanCP is the chunked T_CP max; merged in parallelCriticalPath.
func (st *allocState) scanCP(lo, hi, slot int) {
	var cp float64
	for _, v := range st.bl[lo:hi] {
		if v > cp {
			cp = v
		}
	}
	st.partCP[slot] = cp
}

func (st *allocState) parallelCriticalPath() float64 {
	k := st.pool.run(len(st.bl), st.scanCP)
	var cp float64
	for _, v := range st.partCP[:k] {
		if v > cp {
			cp = v
		}
	}
	return cp
}

// parallelBestCandidate chunks the candidate argmax. Each chunk picks
// its first-best task under the serial rule; the ascending-slot merge
// with the same strict comparison keeps the global lowest-index
// tie-break.
func (st *allocState) parallelBestCandidate(cp float64) int {
	k := st.pool.run(len(st.bl), func(lo, hi, slot int) {
		best := -1
		var bestGain float64
		for i := lo; i < hi; i++ {
			if st.tl[i]+st.bl[i] < cp-cpTolerance || st.alloc[i] >= st.caps[i] {
				continue
			}
			if best < 0 || st.gain[i] > bestGain {
				best, bestGain = i, st.gain[i]
			}
		}
		st.partIdx[slot], st.partGain[slot] = best, bestGain
	})
	best := -1
	var bestGain float64
	for slot := 0; slot < k; slot++ {
		if st.partIdx[slot] < 0 {
			continue
		}
		if best < 0 || st.partGain[slot] > bestGain {
			best, bestGain = st.partIdx[slot], st.partGain[slot]
		}
	}
	return best
}

// parallelInitSweeps computes the initial bottom and top levels level
// by level: within a depth bucket no two tasks share an edge, so a
// bucket's tasks read only finished neighboring buckets. Per task the
// float operations and their order match the serial topo-order sweep
// exactly.
func (st *allocState) parallelInitSweeps() {
	for d := len(st.byDepth) - 1; d >= 0; d-- {
		level := st.byDepth[d]
		st.pool.run(len(level), func(lo, hi, _ int) {
			for _, t := range level[lo:hi] {
				var best float64
				for _, s := range st.succ[st.succOff[t]:st.succOff[t+1]] {
					if st.bl[s] > best {
						best = st.bl[s]
					}
				}
				st.maxSucc[t] = best
				st.bl[t] = st.exec[t] + best
			}
		})
	}
	for d := 0; d < len(st.byDepth); d++ {
		level := st.byDepth[d]
		st.pool.run(len(level), func(lo, hi, _ int) {
			for _, t := range level[lo:hi] {
				var nt float64
				for _, p := range st.pred[st.predOff[t]:st.predOff[t+1]] {
					if v := st.tl[p] + st.exec[p]; v > nt {
						nt = v
					}
				}
				st.tl[t] = nt
			}
		})
	}
}
