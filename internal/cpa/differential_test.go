package cpa

import (
	"fmt"
	"math/rand"
	"testing"

	"resched/internal/daggen"
)

// TestAllocateMatchesReference is the differential guarantee behind
// the incremental allocation phase: over the paper's full Table 1
// parameter grid (40 specs x 3 seeds x 2 cluster sizes x both
// stopping rules = 480 cases), Allocate must produce allocation
// vectors identical to the retained naive implementation. Identity —
// not approximate agreement — is what keeps the Tables 4-10
// reproductions bit-for-bit stable across this optimization.
func TestAllocateMatchesReference(t *testing.T) {
	cases := 0
	for _, spec := range daggen.ParamGrid() {
		for seed := int64(1); seed <= 3; seed++ {
			g := daggen.MustGenerate(spec, rand.New(rand.NewSource(seed)))
			for _, p := range []int{16, 193} {
				for _, rule := range []StopRule{StopStringent, StopClassic} {
					got, err := Allocate(g, p, rule)
					if err != nil {
						t.Fatalf("Allocate(n=%d, p=%d, %v): %v", spec.N, p, rule, err)
					}
					want, err := referenceAllocate(g, p, rule)
					if err != nil {
						t.Fatalf("referenceAllocate(n=%d, p=%d, %v): %v", spec.N, p, rule, err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("n=%d width=%.1f seed=%d p=%d rule=%v: task %d allocated %d, reference %d",
								spec.N, spec.Width, seed, p, rule, i, got[i], want[i])
						}
					}
					cases++
				}
			}
		}
	}
	if cases < 200 {
		t.Fatalf("only %d differential cases; the corpus should cover at least 200", cases)
	}
}

// TestAllocateWideAgainstReference drives the exact configurations the
// BenchmarkAllocateWide acceptance benchmark measures, so the speedup
// being claimed is for provably unchanged output.
func TestAllocateWideAgainstReference(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-DAG differential check is slow under -short")
	}
	for _, n := range []int{200, 400} {
		for _, p := range []int{256, 1152} {
			t.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(t *testing.T) {
				spec := daggen.Default()
				spec.N = n
				spec.Width = 0.8
				g := daggen.MustGenerate(spec, rand.New(rand.NewSource(3)))
				got, err := Allocate(g, p, StopStringent)
				if err != nil {
					t.Fatal(err)
				}
				want, err := referenceAllocate(g, p, StopStringent)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("task %d allocated %d, reference %d", i, got[i], want[i])
					}
				}
			})
		}
	}
}
