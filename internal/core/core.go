// Package core implements the paper's scheduling algorithms for
// mixed-parallel applications under advance reservations:
//
//   - RESSCHED (Section 4): minimize application turn-around time.
//     Twelve list-scheduling heuristics named BL_x_BD_y combine a
//     bottom-level computation method x in {1, ALL, CPA, CPAR} with an
//     allocation bounding method y in {ALL, CPA, CPAR}, plus the
//     BD_HALF strawman of Section 4.3.2.
//
//   - RESSCHEDDL (Section 5): meet a deadline K. Aggressive algorithms
//     DL_BD_{ALL,CPA,CPAR} schedule backward from K picking the latest
//     feasible start; resource-conservative algorithms DL_RC_{CPA,CPAR}
//     pick the cheapest allocation whose start stays after a
//     CPA-computed reference start time; DL_RC_CPAR-λ and
//     DL_RCBD_CPAR-λ are the hybrid variants of Section 5.4.
//
// All algorithms share the same skeleton: compute task bottom levels
// from CPA-informed execution-time estimates, then place one
// reservation per task against the availability profile.
package core

import (
	"errors"
	"fmt"

	"resched/internal/cpa"
	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

// BLMethod selects how task execution times are estimated when
// computing bottom levels (Section 4.2, question 1).
type BLMethod int

const (
	// BL1 estimates every task on a single processor.
	BL1 BLMethod = iota
	// BLAll estimates every task on all p processors.
	BLAll
	// BLCPA uses CPA allocations computed for p processors.
	BLCPA
	// BLCPAR uses CPA allocations computed for q processors, the
	// historical average number of available processors.
	BLCPAR
)

// AllBL lists the bottom-level methods in paper order.
var AllBL = []BLMethod{BL1, BLAll, BLCPA, BLCPAR}

func (m BLMethod) String() string {
	switch m {
	case BL1:
		return "BL_1"
	case BLAll:
		return "BL_ALL"
	case BLCPA:
		return "BL_CPA"
	case BLCPAR:
		return "BL_CPAR"
	default:
		return fmt.Sprintf("BLMethod(%d)", int(m))
	}
}

// BDMethod selects how task allocations are bounded during the mapping
// phase (Section 4.2, question 2).
type BDMethod int

const (
	// BDAll bounds allocations only by the cluster size p.
	BDAll BDMethod = iota
	// BDHalf arbitrarily bounds allocations by p/2 (strawman).
	BDHalf
	// BDCPA bounds each task by its CPA allocation computed for p.
	BDCPA
	// BDCPAR bounds each task by its CPA allocation computed for q.
	BDCPAR
)

// AllBD lists the bounding methods in the order of Table 4.
var AllBD = []BDMethod{BDAll, BDHalf, BDCPA, BDCPAR}

func (m BDMethod) String() string {
	switch m {
	case BDAll:
		return "BD_ALL"
	case BDHalf:
		return "BD_HALF"
	case BDCPA:
		return "BD_CPA"
	case BDCPAR:
		return "BD_CPAR"
	default:
		return fmt.Sprintf("BDMethod(%d)", int(m))
	}
}

// DLAlgorithm selects a deadline-scheduling algorithm (Section 5).
type DLAlgorithm int

const (
	// DLBDAll schedules backward, latest start, allocations bounded
	// only by p.
	DLBDAll DLAlgorithm = iota
	// DLBDCPA bounds allocations by CPA allocations for q = p.
	DLBDCPA
	// DLBDCPAR bounds allocations by CPA allocations for the
	// historical average q.
	DLBDCPAR
	// DLRCCPA is resource conservative with CPA reference start times
	// computed for q = p.
	DLRCCPA
	// DLRCCPAR is resource conservative with reference start times for
	// the historical average q.
	DLRCCPAR
	// DLRCCPARLambda is the hybrid of Section 5.4: it sweeps the
	// laxity parameter lambda from 0 to 1 in steps of 0.05 until the
	// deadline is met.
	DLRCCPARLambda
	// DLRCBDCPARLambda additionally bounds the aggressive fallback by
	// the CPA allocation (last row of Table 7).
	DLRCBDCPARLambda
)

// AllDL lists the deadline algorithms in the order of Table 6 followed
// by the Table 7 hybrids.
var AllDL = []DLAlgorithm{DLBDAll, DLBDCPA, DLBDCPAR, DLRCCPA, DLRCCPAR, DLRCCPARLambda, DLRCBDCPARLambda}

func (a DLAlgorithm) String() string {
	switch a {
	case DLBDAll:
		return "DL_BD_ALL"
	case DLBDCPA:
		return "DL_BD_CPA"
	case DLBDCPAR:
		return "DL_BD_CPAR"
	case DLRCCPA:
		return "DL_RC_CPA"
	case DLRCCPAR:
		return "DL_RC_CPAR"
	case DLRCCPARLambda:
		return "DL_RC_CPAR-l"
	case DLRCBDCPARLambda:
		return "DL_RCBD_CPAR-l"
	default:
		return fmt.Sprintf("DLAlgorithm(%d)", int(a))
	}
}

// ErrInfeasible is returned by deadline scheduling when no schedule
// meeting the deadline was found.
var ErrInfeasible = errors.New("core: deadline cannot be met")

// Env is one scheduling environment: the cluster, the current time,
// the competing-reservation profile, and the historical average number
// of available processors q used by the *_CPAR methods.
type Env struct {
	// P is the total number of processors in the cluster.
	P int
	// Now is the time at which scheduling happens; every task
	// reservation starts at or after Now.
	Now model.Time
	// Avail is the availability profile holding all competing
	// reservations, on either backend (flat *profile.Profile or
	// *profile.TreeProfile; see profile.Auto). Its origin must not be
	// after Now. Schedulers clone it; the caller's profile is never
	// modified.
	Avail profile.Intervals
	// Q is the historical average number of available processors
	// (Section 4.2). If zero, it defaults to P.
	Q int
}

// validate checks the environment and returns the effective q.
func (e *Env) validate() (int, error) {
	if e.P < 1 {
		return 0, fmt.Errorf("core: cluster size %d < 1", e.P)
	}
	if e.Avail == nil {
		return 0, fmt.Errorf("core: nil availability profile")
	}
	if e.Avail.Capacity() != e.P {
		return 0, fmt.Errorf("core: profile capacity %d != cluster size %d", e.Avail.Capacity(), e.P)
	}
	if e.Avail.Origin() > e.Now {
		return 0, fmt.Errorf("core: profile origin %d after now %d", e.Avail.Origin(), e.Now)
	}
	q := e.Q
	if q == 0 {
		q = e.P
	}
	if q < 1 || q > e.P {
		return 0, fmt.Errorf("core: historical average %d outside [1,%d]", q, e.P)
	}
	return q, nil
}

// Placement is one task's reservation in a schedule.
type Placement struct {
	Procs int
	Start model.Time
	End   model.Time
}

// Schedule is a complete application schedule: one reservation per
// task, indexed by task ID.
type Schedule struct {
	Now   model.Time
	Tasks []Placement
}

// Completion returns the latest task end time.
func (s *Schedule) Completion() model.Time {
	c := s.Now
	for _, pl := range s.Tasks {
		if pl.End > c {
			c = pl.End
		}
	}
	return c
}

// Turnaround returns Completion() - Now, the RESSCHED objective.
func (s *Schedule) Turnaround() model.Duration { return s.Completion() - s.Now }

// ProcSeconds returns the total processor-seconds reserved.
func (s *Schedule) ProcSeconds() model.Duration {
	var sum model.Duration
	for _, pl := range s.Tasks {
		sum += model.Duration(pl.Procs) * (pl.End - pl.Start)
	}
	return sum
}

// CPUHours returns the schedule's resource consumption in CPU-hours,
// the unit of Tables 4-7.
func (s *Schedule) CPUHours() float64 { return model.CPUHours(s.ProcSeconds()) }

// Scheduler runs the paper's algorithms for one application DAG. It
// caches CPA allocations and derived bottom levels per cluster size, so
// scheduling the same application against many reservation instances —
// the shape of every experiment in the paper — does not recompute them.
// A Scheduler is not safe for concurrent use.
type Scheduler struct {
	g          *dag.Graph
	stop       cpa.StopRule
	allocCache map[int][]int
	cpaWorkers int

	// Scratch buffers reused across calls, keeping the per-task
	// candidate scans and the per-call working profile allocation-free.
	// scratchAvail is the clone-into target for the availability
	// profile each scheduling call mutates; it is safe to reuse because
	// every probe sequence against it is, per call, strictly sequential.
	scratchCands  []int
	scratchReqs   []profile.FitRequest
	scratchStarts []model.Time
	scratchOK     []bool
	scratchAvail  profile.Intervals
}

// NewScheduler returns a Scheduler for the given application using the
// default (stringent) CPA stopping rule.
func NewScheduler(g *dag.Graph) (*Scheduler, error) {
	return NewSchedulerRule(g, cpa.StopStringent)
}

// NewSchedulerRule selects the CPA stopping rule explicitly (used by
// the ablation benchmarks).
func NewSchedulerRule(g *dag.Graph, rule cpa.StopRule) (*Scheduler, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{g: g, stop: rule, allocCache: make(map[int][]int)}, nil
}

// Graph returns the application DAG the scheduler was built for.
func (s *Scheduler) Graph() *dag.Graph { return s.g }

// SetCPAWorkers fans the CPA allocation phase's level sweeps and
// candidate scans across up to n goroutines (0 or 1 keeps it serial).
// Safe at any point because the parallel path is bit-identical to the
// serial one — cached allocations cannot diverge from later ones.
func (s *Scheduler) SetCPAWorkers(n int) { s.cpaWorkers = n }

// cpaAlloc returns (and caches) the CPA allocation for a cluster of
// q processors.
func (s *Scheduler) cpaAlloc(q int) ([]int, error) {
	if a, ok := s.allocCache[q]; ok {
		return a, nil
	}
	a, err := cpa.AllocateWorkers(s.g, q, s.stop, s.cpaWorkers)
	if err != nil {
		return nil, err
	}
	s.allocCache[q] = a
	return a, nil
}

// blExec returns the execution-time vector used for bottom-level
// computation under the given method.
func (s *Scheduler) blExec(m BLMethod, p, q int) ([]model.Duration, error) {
	switch m {
	case BL1:
		return s.g.ExecTimes(s.g.UniformAlloc(1))
	case BLAll:
		return s.g.ExecTimes(s.g.UniformAlloc(p))
	case BLCPA:
		alloc, err := s.cpaAlloc(p)
		if err != nil {
			return nil, err
		}
		return s.g.ExecTimes(alloc)
	case BLCPAR:
		alloc, err := s.cpaAlloc(q)
		if err != nil {
			return nil, err
		}
		return s.g.ExecTimes(alloc)
	default:
		return nil, fmt.Errorf("core: unknown bottom-level method %v", m)
	}
}

// fitRequests fills the scheduler's request scratch with one
// (processors, duration) probe per distinct-duration candidate
// allocation in [1, bound] — the shared setup of every per-task
// candidate scan.
func (s *Scheduler) fitRequests(seq model.Duration, alpha float64, bound int) []profile.FitRequest {
	s.scratchCands = appendAllocCandidates(s.scratchCands[:0], seq, alpha, bound)
	reqs := s.scratchReqs[:0]
	for _, m := range s.scratchCands {
		reqs = append(reqs, profile.FitRequest{Procs: m, Dur: model.ExecTime(seq, alpha, m)})
	}
	s.scratchReqs = reqs
	return reqs
}

// workingAvail copies the environment's availability profile into the
// scheduler's scratch profile, the mutable working copy a scheduling
// call commits task reservations into. The caller's profile is never
// modified; reusing the scratch avoids a full Clone per call. The copy
// stays on the environment's backend, so a tree-backed Env keeps its
// O(log n) probes through the whole computation.
func (s *Scheduler) workingAvail(env *Env) profile.Intervals {
	s.scratchAvail = profile.CopyIntervals(env.Avail, s.scratchAvail)
	return s.scratchAvail
}

// bounds returns the per-task allocation bounds under the given
// bounding method.
func (s *Scheduler) bounds(m BDMethod, p, q int) ([]int, error) {
	switch m {
	case BDAll:
		return s.g.UniformAlloc(p), nil
	case BDHalf:
		h := p / 2
		if h < 1 {
			h = 1
		}
		return s.g.UniformAlloc(h), nil
	case BDCPA:
		return s.cpaAlloc(p)
	case BDCPAR:
		return s.cpaAlloc(q)
	default:
		return nil, fmt.Errorf("core: unknown bounding method %v", m)
	}
}
