package core

import (
	"fmt"
	"math/rand"
	"testing"

	"resched/internal/cpa"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

// These tests pin the scheduling hot-path optimizations (batch profile
// fits, scratch-buffer candidate scans, clone-into working profiles)
// to the naive per-probe implementations they replaced: every
// algorithm must produce placement-for-placement identical schedules.

// naiveTurnaround is the pre-optimization turnaround inner loop: a
// fresh Clone of the availability profile, allocCandidates allocated
// per task, and one solo EarliestFit per candidate.
func naiveTurnaround(s *Scheduler, env Env, bl BLMethod, bd BDMethod) (*Schedule, error) {
	q, err := env.validate()
	if err != nil {
		return nil, err
	}
	exec, err := s.blExec(bl, env.P, q)
	if err != nil {
		return nil, err
	}
	order, err := cpa.PriorityOrder(s.g, exec)
	if err != nil {
		return nil, err
	}
	bound, err := s.bounds(bd, env.P, q)
	if err != nil {
		return nil, err
	}
	avail := env.Avail.CloneIntervals()
	sched := &Schedule{Now: env.Now, Tasks: make([]Placement, s.g.NumTasks())}
	for _, t := range order {
		ready := env.Now
		for _, pr := range s.g.Predecessors(t) {
			if f := sched.Tasks[pr].End; f > ready {
				ready = f
			}
		}
		task := s.g.Task(t)
		limit := bound[t]
		if limit > env.P {
			limit = env.P
		}
		bestM, bestStart, bestFinish := 0, model.Time(0), model.Infinity
		for _, m := range allocCandidates(task.Seq, task.Alpha, limit) {
			d := model.ExecTime(task.Seq, task.Alpha, m)
			st := avail.EarliestFit(m, d, ready)
			if st+d < bestFinish {
				bestM, bestStart, bestFinish = m, st, st+d
			}
		}
		if bestM == 0 {
			return nil, fmt.Errorf("core: no allocation bound for task %d", t)
		}
		if bestFinish > bestStart {
			if err := avail.Reserve(bestStart, bestFinish, bestM); err != nil {
				return nil, err
			}
		}
		sched.Tasks[t] = Placement{Procs: bestM, Start: bestStart, End: bestFinish}
	}
	return sched, nil
}

// naiveLatestPair is the pre-optimization aggressive pick: one solo
// LatestFit per candidate allocation.
func naiveLatestPair(avail profile.Intervals, task taskParams, bound int, now, dl model.Time) (int, model.Time, bool) {
	bestM, bestStart, found := 0, model.Time(0), false
	for _, m := range allocCandidates(task.seq, task.alpha, bound) {
		d := model.ExecTime(task.seq, task.alpha, m)
		st, ok := avail.LatestFit(m, d, now, dl)
		if ok && (!found || st > bestStart) {
			bestM, bestStart, found = m, st, true
		}
	}
	return bestM, bestStart, found
}

// naiveDeadline reimplements the backward schedulers (aggressive and
// plain resource-conservative) with solo probes and a cloned profile.
func naiveDeadline(s *Scheduler, env Env, algo DLAlgorithm, deadline model.Time) (*Schedule, error) {
	q, err := env.validate()
	if err != nil {
		return nil, err
	}
	if deadline < env.Now {
		return nil, fmt.Errorf("%w: deadline %d before now %d", ErrInfeasible, deadline, env.Now)
	}
	var bound []int
	rc, qRef := false, 0
	switch algo {
	case DLBDAll:
		bound = s.g.UniformAlloc(env.P)
	case DLBDCPA:
		if bound, err = s.cpaAlloc(env.P); err != nil {
			return nil, err
		}
	case DLBDCPAR:
		if bound, err = s.cpaAlloc(q); err != nil {
			return nil, err
		}
	case DLRCCPA:
		rc, qRef = true, env.P
	case DLRCCPAR:
		rc, qRef = true, q
	default:
		return nil, fmt.Errorf("naiveDeadline does not cover %v", algo)
	}
	var allocRef []int
	if rc {
		if allocRef, err = s.cpaAlloc(qRef); err != nil {
			return nil, err
		}
	}
	order, err := s.backwardOrder(env.P, q)
	if err != nil {
		return nil, err
	}
	avail := env.Avail.CloneIntervals()
	sched := &Schedule{Now: env.Now, Tasks: make([]Placement, s.g.NumTasks())}
	unscheduled := make([]bool, s.g.NumTasks())
	for i := range unscheduled {
		unscheduled[i] = true
	}
	for _, t := range order {
		dl := taskDeadline(sched, s.g.Successors(t), deadline)
		task := taskParams{s.g.Task(t).Seq, s.g.Task(t).Alpha}
		var m int
		var st model.Time
		var ok bool
		if rc {
			ref, err := cpa.ListScheduleSubset(s.g, allocRef, qRef, env.Now, unscheduled)
			if err != nil {
				return nil, err
			}
			threshold := ref.Start[t] // lambda = 0
			for _, cand := range allocCandidates(task.seq, task.alpha, allocRef[t]) {
				d := model.ExecTime(task.seq, task.alpha, cand)
				lst, fits := avail.LatestFit(cand, d, env.Now, dl)
				if !fits || lst < threshold {
					continue
				}
				if !ok || lst < st {
					m, st, ok = cand, lst, true
				}
			}
			if !ok {
				m, st, ok = naiveLatestPair(avail, task, env.P, env.Now, dl)
			}
		} else {
			m, st, ok = naiveLatestPair(avail, task, bound[t], env.Now, dl)
		}
		if !ok {
			return nil, fmt.Errorf("%w: task %d has no feasible reservation before %d", ErrInfeasible, t, dl)
		}
		d := model.ExecTime(task.seq, task.alpha, m)
		if d > 0 {
			if err := avail.Reserve(st, st+d, m); err != nil {
				return nil, err
			}
		}
		sched.Tasks[t] = Placement{Procs: m, Start: st, End: st + d}
		unscheduled[t] = false
	}
	return sched, nil
}

func samePlacements(t *testing.T, label string, got, want *Schedule) {
	t.Helper()
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("%s: %d tasks vs %d", label, len(got.Tasks), len(want.Tasks))
	}
	for i := range want.Tasks {
		if got.Tasks[i] != want.Tasks[i] {
			t.Fatalf("%s: task %d placed %+v, naive reference %+v", label, i, got.Tasks[i], want.Tasks[i])
		}
	}
}

// TestTurnaroundMatchesNaive compares every BL x BD heuristic against
// the naive reimplementation over random DAGs and reservation
// environments (>= 200 schedule comparisons).
func TestTurnaroundMatchesNaive(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = 30 + rng.Intn(40)
		g := daggen.MustGenerate(spec, rng)
		s := mustScheduler(t, g)
		for e := 0; e < 4; e++ {
			env := randomEnv(rng, 64, 1000)
			for _, bl := range AllBL {
				for _, bd := range []BDMethod{BDAll, BDCPA, BDCPAR} {
					got, err := s.Turnaround(env, bl, bd)
					if err != nil {
						t.Fatalf("seed %d env %d %v/%v: %v", seed, e, bl, bd, err)
					}
					want, err := naiveTurnaround(s, env, bl, bd)
					if err != nil {
						t.Fatalf("naive seed %d env %d %v/%v: %v", seed, e, bl, bd, err)
					}
					samePlacements(t, fmt.Sprintf("seed %d env %d %v/%v", seed, e, bl, bd), got, want)
					cases++
				}
			}
		}
	}
	if cases < 200 {
		t.Fatalf("only %d turnaround comparisons; the corpus should cover at least 200", cases)
	}
}

// TestDeadlineMatchesNaive compares the backward schedulers against
// the naive reimplementation, at a loose deadline (feasible for every
// algorithm) and a tight one (infeasibility must agree too).
func TestDeadlineMatchesNaive(t *testing.T) {
	algos := []DLAlgorithm{DLBDAll, DLBDCPA, DLBDCPAR, DLRCCPA, DLRCCPAR}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = 20 + rng.Intn(25)
		g := daggen.MustGenerate(spec, rng)
		s := mustScheduler(t, g)
		for e := 0; e < 2; e++ {
			env := randomEnv(rng, 64, 1000)
			base, err := s.Turnaround(env, BLCPAR, BDCPAR)
			if err != nil {
				t.Fatal(err)
			}
			loose := base.Completion() + model.Time(2*model.Day)
			tight := env.Now + (base.Completion()-env.Now)/4
			for _, algo := range algos {
				for _, deadline := range []model.Time{loose, tight} {
					got, errGot := s.Deadline(env, algo, deadline)
					want, errWant := naiveDeadline(s, env, algo, deadline)
					if (errGot == nil) != (errWant == nil) {
						t.Fatalf("seed %d env %d %v K=%d: optimized err %v, naive err %v",
							seed, e, algo, deadline, errGot, errWant)
					}
					if errGot == nil {
						samePlacements(t, fmt.Sprintf("seed %d env %d %v K=%d", seed, e, algo, deadline), got, want)
					}
				}
			}
		}
	}
}
