package core

import "fmt"

// ParseBL resolves a bottom-level method from its paper name
// (e.g. "BL_CPAR").
func ParseBL(name string) (BLMethod, error) {
	for _, m := range AllBL {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown bottom-level method %q (want one of %v)", name, AllBL)
}

// ParseBD resolves an allocation bounding method from its paper name
// (e.g. "BD_CPAR").
func ParseBD(name string) (BDMethod, error) {
	for _, m := range AllBD {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown bounding method %q (want one of %v)", name, AllBD)
}

// ParseDL resolves a deadline algorithm from its paper name
// (e.g. "DL_RC_CPAR-l" for DL_RC_CPAR-lambda).
func ParseDL(name string) (DLAlgorithm, error) {
	for _, a := range AllDL {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown deadline algorithm %q (want one of %v)", name, AllDL)
}
