package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"resched/internal/cpa"
	"resched/internal/model"
	"resched/internal/profile"
)

// LambdaStep is the step with which the hybrid algorithms sweep the
// laxity parameter lambda from 0 to 1 (Section 5.4).
const LambdaStep = 0.05

// Deadline solves RESSCHEDDL: it returns a schedule completing by
// deadline K, or ErrInfeasible (wrapped) if the algorithm cannot find
// one. Tasks are scheduled backward — in increasing bottom-level order,
// each constrained to finish before its already-scheduled successors
// start (Section 5.2). Bottom levels always use the BL_CPAR method,
// which Section 4.3.1 found best.
func (s *Scheduler) Deadline(env Env, algo DLAlgorithm, deadline model.Time) (*Schedule, error) {
	return s.DeadlineCtx(context.Background(), env, algo, deadline)
}

// DeadlineCtx is Deadline with cooperative cancellation: the backward
// list-scheduling loops (and the lambda sweep) check ctx between
// tasks, so a serving process can bound the latency of a single
// scheduling request. On cancellation it returns ctx.Err() (possibly
// wrapped).
func (s *Scheduler) DeadlineCtx(ctx context.Context, env Env, algo DLAlgorithm, deadline model.Time) (*Schedule, error) {
	q, err := env.validate()
	if err != nil {
		return nil, err
	}
	if deadline < env.Now {
		return nil, fmt.Errorf("%w: deadline %d before now %d", ErrInfeasible, deadline, env.Now)
	}
	switch algo {
	case DLBDAll, DLBDCPA, DLBDCPAR:
		return s.deadlineAggressive(ctx, env, q, algo, deadline)
	case DLRCCPA:
		return s.deadlineRC(ctx, env, q, env.P, deadline, 0, false)
	case DLRCCPAR:
		return s.deadlineRC(ctx, env, q, q, deadline, 0, false)
	case DLRCCPARLambda:
		return s.deadlineLambda(ctx, env, q, deadline, false)
	case DLRCBDCPARLambda:
		return s.deadlineLambda(ctx, env, q, deadline, true)
	default:
		return nil, fmt.Errorf("core: unknown deadline algorithm %v", algo)
	}
}

// backwardOrder returns tasks in increasing BL_CPAR bottom-level order
// along with each task's scheduling deadline accumulator.
func (s *Scheduler) backwardOrder(p, q int) ([]int, error) {
	exec, err := s.blExec(BLCPAR, p, q)
	if err != nil {
		return nil, err
	}
	fwd, err := cpa.PriorityOrder(s.g, exec)
	if err != nil {
		return nil, err
	}
	rev := make([]int, len(fwd))
	for i, t := range fwd {
		rev[len(fwd)-1-i] = t
	}
	return rev, nil
}

// taskDeadline returns the time by which task t must finish: the
// minimum start time of its (already scheduled) successors, or the
// application deadline if it has none.
func taskDeadline(sched *Schedule, succs []int, deadline model.Time) model.Time {
	dl := deadline
	for _, sc := range succs {
		if st := sched.Tasks[sc].Start; st < dl {
			dl = st
		}
	}
	return dl
}

// latestPair finds the <processors, start> pair with the latest start
// time among allocations 1..bound, the aggressive choice of Section
// 5.2.1. Ties favor fewer processors. The candidate probes run as one
// batch LatestFits sweep of the profile.
func (s *Scheduler) latestPair(avail profile.Intervals, task taskParams, bound int, now, dl model.Time) (int, model.Time, bool) {
	reqs := s.fitRequests(task.seq, task.alpha, bound)
	s.scratchStarts, s.scratchOK = avail.LatestFits(reqs, now, dl, s.scratchStarts, s.scratchOK)
	bestM, bestStart, found := 0, model.Time(0), false
	for k := range reqs {
		if s.scratchOK[k] && (!found || s.scratchStarts[k] > bestStart) {
			bestM, bestStart, found = reqs[k].Procs, s.scratchStarts[k], true
		}
	}
	return bestM, bestStart, found
}

type taskParams struct {
	seq   model.Duration
	alpha float64
}

func (s *Scheduler) deadlineAggressive(ctx context.Context, env Env, q int, algo DLAlgorithm, deadline model.Time) (*Schedule, error) {
	var bound []int
	switch algo {
	case DLBDAll:
		bound = s.g.UniformAlloc(env.P)
	case DLBDCPA:
		a, err := s.cpaAlloc(env.P)
		if err != nil {
			return nil, err
		}
		bound = a
	case DLBDCPAR:
		a, err := s.cpaAlloc(q)
		if err != nil {
			return nil, err
		}
		bound = a
	default:
		// DeadlineCtx dispatches only the DL_BD algorithms here; an
		// unhandled one would otherwise leave bound nil and fail far
		// from the cause.
		return nil, fmt.Errorf("core: %v is not an aggressive deadline algorithm", algo)
	}
	order, err := s.backwardOrder(env.P, q)
	if err != nil {
		return nil, err
	}
	avail := s.workingAvail(&env)
	sched := &Schedule{Now: env.Now, Tasks: make([]Placement, s.g.NumTasks())}
	for _, t := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: deadline scheduling: %w", err)
		}
		dl := taskDeadline(sched, s.g.Successors(t), deadline)
		task := taskParams{s.g.Task(t).Seq, s.g.Task(t).Alpha}
		m, st, ok := s.latestPair(avail, task, bound[t], env.Now, dl)
		if !ok {
			return nil, fmt.Errorf("%w: task %d has no feasible reservation before %d (%s)", ErrInfeasible, t, dl, algo)
		}
		if err := s.commit(avail, sched, t, m, st); err != nil {
			return nil, err
		}
	}
	return sched, nil
}

// deadlineRC is the resource-conservative scheduler of Section 5.2.2,
// generalized with the lambda laxity of Section 5.4. qRef selects the
// cluster size of the CPA reference schedule (p for DL_RC_CPA, the
// historical average for DL_RC_CPAR). When an RC pick is impossible the
// algorithm falls back to the aggressive latest-start choice, bounded
// by the CPA allocation when boundedFallback is set (DL_RCBD_CPAR-λ).
func (s *Scheduler) deadlineRC(ctx context.Context, env Env, q, qRef int, deadline model.Time, lambda float64, boundedFallback bool) (*Schedule, error) {
	allocRef, err := s.cpaAlloc(qRef)
	if err != nil {
		return nil, err
	}
	order, err := s.backwardOrder(env.P, q)
	if err != nil {
		return nil, err
	}
	avail := s.workingAvail(&env)
	sched := &Schedule{Now: env.Now, Tasks: make([]Placement, s.g.NumTasks())}
	unscheduled := make([]bool, s.g.NumTasks())
	for i := range unscheduled {
		unscheduled[i] = true
	}
	for _, t := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: deadline scheduling: %w", err)
		}
		dl := taskDeadline(sched, s.g.Successors(t), deadline)
		task := taskParams{s.g.Task(t).Seq, s.g.Task(t).Alpha}

		// CPA reference start time S_t: a fresh CPA schedule of the
		// not-yet-scheduled upper part of the DAG, on a dedicated
		// cluster of qRef processors starting now.
		ref, err := cpa.ListScheduleSubset(s.g, allocRef, qRef, env.Now, unscheduled)
		if err != nil {
			return nil, fmt.Errorf("core: CPA reference schedule: %w", err)
		}
		refStart := ref.Start[t]

		// Laxity-adjusted threshold: S_t + lambda*(dl_t - S_t). With
		// lambda = 0 this is the plain RC rule; lambda = 1 pushes the
		// threshold to the task deadline, forcing aggressive behavior.
		threshold := refStart + model.Time(math.Round(lambda*float64(dl-refStart)))

		// RC pick: each allocation's candidate is its latest feasible
		// start before the task deadline; among candidates starting at
		// or after the threshold, take the earliest-starting one —
		// equivalently (Section 5.2.2) the fewest processors that do
		// not preclude meeting the deadline. Allocations are bounded by
		// the CPA allocation, the same search space the aggressive
		// algorithms use (the paper equates lambda = 1 with them). When
		// the deadline is loose the candidate start is far past S_t and
		// one processor wins; as it tightens, candidate starts compress
		// toward S_t and the allocation grows toward the CPA schedule's.
		reqs := s.fitRequests(task.seq, task.alpha, allocRef[t])
		s.scratchStarts, s.scratchOK = avail.LatestFits(reqs, env.Now, dl, s.scratchStarts, s.scratchOK)
		m, st, ok := 0, model.Time(0), false
		for k := range reqs {
			lst := s.scratchStarts[k]
			if !s.scratchOK[k] || lst < threshold {
				continue
			}
			if !ok || lst < st {
				m, st, ok = reqs[k].Procs, lst, true
			}
		}
		if !ok {
			// Aggressive fallback ("back on track", Section 5.2.2 /
			// 5.4): latest start, optionally bounded by the CPA
			// allocation.
			bound := env.P
			if boundedFallback {
				bound = allocRef[t]
			}
			m, st, ok = s.latestPair(avail, task, bound, env.Now, dl)
		}
		if !ok {
			return nil, fmt.Errorf("%w: task %d has no feasible reservation before %d (RC)", ErrInfeasible, t, dl)
		}
		if err := s.commit(avail, sched, t, m, st); err != nil {
			return nil, err
		}
		unscheduled[t] = false
	}
	return sched, nil
}

// deadlineLambda sweeps lambda from 0 to 1 in LambdaStep increments,
// returning the first schedule that meets the deadline — i.e. the most
// resource-conservative laxity that works (Section 5.4).
func (s *Scheduler) deadlineLambda(ctx context.Context, env Env, q int, deadline model.Time, boundedFallback bool) (*Schedule, error) {
	var lastErr error
	for step := 0; ; step++ {
		lambda := float64(step) * LambdaStep
		if lambda > 1 {
			break
		}
		sched, err := s.deadlineRC(ctx, env, q, q, deadline, lambda, boundedFallback)
		if err == nil {
			return sched, nil
		}
		if !errors.Is(err, ErrInfeasible) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: no lambda in [0,1] meets deadline %d (last: %v)", ErrInfeasible, deadline, lastErr)
}

// commit reserves the chosen placement and records it.
func (s *Scheduler) commit(avail profile.Intervals, sched *Schedule, t, m int, st model.Time) error {
	d := model.ExecTime(s.g.Task(t).Seq, s.g.Task(t).Alpha, m)
	if d > 0 {
		if err := avail.Reserve(st, st+d, m); err != nil {
			return fmt.Errorf("core: reserving task %d: %w", t, err)
		}
	}
	sched.Tasks[t] = Placement{Procs: m, Start: st, End: st + d}
	return nil
}
