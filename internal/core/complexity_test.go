package core

import (
	"math/rand"
	"testing"
	"time"

	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

// TestComplexityScaling is the empirical companion to the paper's
// Table 8: all algorithms are polynomial, so quadrupling the task
// count must not blow running time up combinatorially. The bound is
// deliberately generous (wall-clock tests must not flake): Table 8
// predicts roughly V^2 growth in V for fixed platform and reservation
// schedule, and we allow two orders of magnitude for 4x the tasks.
func TestComplexityScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rng := rand.New(rand.NewSource(12))
	env := Env{P: 64, Now: 0, Avail: profile.New(64, 0), Q: 48}
	for k := 0; k < 20; k++ {
		start := model.Time(rng.Int63n(int64(2 * model.Day)))
		dur := model.Duration(rng.Int63n(int64(4*model.Hour)) + 600)
		procs := rng.Intn(48) + 1
		if env.Avail.MinFree(start, start+dur) >= procs {
			if err := env.Avail.Reserve(start, start+dur, procs); err != nil {
				t.Fatal(err)
			}
		}
	}

	timeFor := func(n int) time.Duration {
		spec := daggen.Default()
		spec.N = n
		var total time.Duration
		const reps = 5
		for r := 0; r < reps; r++ {
			g := daggen.MustGenerate(spec, rng)
			t0 := time.Now()
			s, err := NewScheduler(g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Turnaround(env, BLCPAR, BDCPAR); err != nil {
				t.Fatal(err)
			}
			total += time.Since(t0)
		}
		return total / reps
	}

	small := timeFor(25)
	large := timeFor(100)
	if small <= 0 {
		small = time.Microsecond
	}
	ratio := float64(large) / float64(small)
	// V^2 predicts ~16x; anything under 100x is comfortably polynomial.
	if ratio > 100 {
		t.Fatalf("scheduling time grew %.0fx from n=25 to n=100 (%v -> %v): super-polynomial?",
			ratio, small, large)
	}
}
