package core

import (
	"math/rand"
	"testing"
	"time"

	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

// TestComplexityScaling is the empirical companion to the paper's
// Table 8: all algorithms are polynomial, so quadrupling the task
// count must not blow running time up combinatorially. The bound is
// deliberately generous (wall-clock tests must not flake): Table 8
// predicts roughly V^2 growth in V for fixed platform and reservation
// schedule, and we allow two orders of magnitude for 4x the tasks.
func TestComplexityScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rng := rand.New(rand.NewSource(12))
	env := Env{P: 64, Now: 0, Avail: profile.New(64, 0), Q: 48}
	for k := 0; k < 20; k++ {
		start := model.Time(rng.Int63n(int64(2 * model.Day)))
		dur := model.Duration(rng.Int63n(int64(4*model.Hour)) + 600)
		procs := rng.Intn(48) + 1
		if env.Avail.MinFree(start, start+dur) >= procs {
			if err := env.Avail.Reserve(start, start+dur, procs); err != nil {
				t.Fatal(err)
			}
		}
	}

	timeFor := func(n int) time.Duration {
		spec := daggen.Default()
		spec.N = n
		var total time.Duration
		const reps = 5
		for r := 0; r < reps; r++ {
			g := daggen.MustGenerate(spec, rng)
			t0 := time.Now()
			s, err := NewScheduler(g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Turnaround(env, BLCPAR, BDCPAR); err != nil {
				t.Fatal(err)
			}
			total += time.Since(t0)
		}
		return total / reps
	}

	small := timeFor(25)
	large := timeFor(100)
	if small <= 0 {
		small = time.Microsecond
	}
	ratio := float64(large) / float64(small)
	// V^2 predicts ~16x; anything under 100x is comfortably polynomial.
	if ratio > 100 {
		t.Fatalf("scheduling time grew %.0fx from n=25 to n=100 (%v -> %v): super-polynomial?",
			ratio, small, large)
	}
}

// TestAllocateWidthScaling guards the incremental CPA allocation phase
// against regressing to the naive per-iteration level sweeps. On DAGs
// of doubling width the naive implementation is quadratic-plus in the
// task count (iterations x full O(V+E) sweeps); the incremental repair
// should stay well under that. As with TestComplexityScaling the bound
// is generous so wall-clock noise cannot flake the test: doubling n on
// width-heavy DAGs costs the naive code ~5-6x (measured); we fail past
// 12x, which it exceeds while the incremental version sits around 3x.
func TestAllocateWidthScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	timeFor := func(n int) time.Duration {
		spec := daggen.Default()
		spec.N = n
		spec.Width = 0.8
		var total time.Duration
		const reps = 4
		for r := 0; r < reps; r++ {
			g := daggen.MustGenerate(spec, rand.New(rand.NewSource(int64(r))))
			s := mustScheduler(t, g)
			t0 := time.Now()
			if _, err := s.cpaAlloc(256); err != nil {
				t.Fatal(err)
			}
			total += time.Since(t0)
		}
		return total / reps
	}
	timeFor(100) // warm up code paths before timing
	small := timeFor(200)
	large := timeFor(400)
	if small <= 0 {
		small = time.Microsecond
	}
	if ratio := float64(large) / float64(small); ratio > 12 {
		t.Fatalf("CPA allocation grew %.1fx from n=200 to n=400 (%v -> %v): incremental repair regressed?",
			ratio, small, large)
	}
}

// TestTurnaroundAllocsPerTask asserts the zero-allocation property of
// the per-task candidate scan: once the scheduler's scratch buffers
// have warmed up, the number of allocations per Turnaround call must
// not grow with the task count (only O(1)-count per-call slices such
// as the order, level, and placement vectors remain).
func TestTurnaroundAllocsPerTask(t *testing.T) {
	allocsFor := func(n int) float64 {
		spec := daggen.Default()
		spec.N = n
		g := daggen.MustGenerate(spec, rand.New(rand.NewSource(9)))
		s := mustScheduler(t, g)
		env := emptyEnv(64, 0)
		if _, err := s.Turnaround(env, BLCPAR, BDCPAR); err != nil { // warm caches and scratch
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := s.Turnaround(env, BLCPAR, BDCPAR); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocsFor(20)
	large := allocsFor(160)
	// 8x the tasks may not cost even one extra allocation per added
	// task; a per-task allocation anywhere in the loop would add >= 140.
	if large > small+20 {
		t.Fatalf("allocs/run grew from %.0f (n=20) to %.0f (n=160): a per-task allocation crept into the hot path", small, large)
	}
}
