package core

import (
	"context"
	"errors"
	"testing"

	"resched/internal/model"
	"resched/internal/profile"
)

// TestCanceledContextStopsScheduling checks that every context-aware
// entry point returns promptly with context.Canceled instead of
// completing the schedule — the property the daemon's per-request
// timeouts rely on.
func TestCanceledContextStopsScheduling(t *testing.T) {
	g := chainGraph(20, model.Hour, 0.1)
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{P: 16, Now: 0, Avail: profile.New(16, 0)}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := s.TurnaroundCtx(ctx, env, BLCPAR, BDCPAR); !errors.Is(err, context.Canceled) {
		t.Errorf("TurnaroundCtx under canceled ctx: %v, want context.Canceled", err)
	}
	for _, algo := range AllDL {
		if _, err := s.DeadlineCtx(ctx, env, algo, 100*model.Hour); !errors.Is(err, context.Canceled) {
			t.Errorf("DeadlineCtx(%v) under canceled ctx: %v, want context.Canceled", algo, err)
		}
	}
	if _, _, err := s.TightestDeadlineCtx(ctx, env, DLBDCPA); !errors.Is(err, context.Canceled) {
		t.Errorf("TightestDeadlineCtx under canceled ctx: %v, want context.Canceled", err)
	}
}

// TestBackgroundContextMatchesPlainCalls checks the ctx variants are
// pure wrappers: with a background context they produce the same
// schedules as the original entry points.
func TestBackgroundContextMatchesPlainCalls(t *testing.T) {
	g := chainGraph(5, model.Hour, 0.1)
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	avail := profile.New(16, 0)
	if err := avail.Reserve(0, 2*model.Hour, 12); err != nil {
		t.Fatal(err)
	}
	env := Env{P: 16, Now: 0, Avail: avail, Q: 8}

	want, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TurnaroundCtx(context.Background(), env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completion() != want.Completion() || got.ProcSeconds() != want.ProcSeconds() {
		t.Errorf("TurnaroundCtx schedule differs: completion %d vs %d", got.Completion(), want.Completion())
	}

	deadline := env.Now + 100*model.Hour
	wantDL, err := s.Deadline(env, DLRCCPAR, deadline)
	if err != nil {
		t.Fatal(err)
	}
	gotDL, err := s.DeadlineCtx(context.Background(), env, DLRCCPAR, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if gotDL.Completion() != wantDL.Completion() || gotDL.ProcSeconds() != wantDL.ProcSeconds() {
		t.Errorf("DeadlineCtx schedule differs: completion %d vs %d", gotDL.Completion(), wantDL.Completion())
	}
}
