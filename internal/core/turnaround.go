package core

import (
	"context"
	"fmt"

	"resched/internal/cpa"
	"resched/internal/model"
)

// Turnaround solves RESSCHED with the BL_x_BD_y heuristic of Section
// 4.2: compute bottom levels with method bl, then schedule tasks in
// decreasing bottom-level order, each at the <processors, start>
// pair that minimizes its completion time against the current
// reservation schedule, with allocations bounded by method bd.
func (s *Scheduler) Turnaround(env Env, bl BLMethod, bd BDMethod) (*Schedule, error) {
	return s.TurnaroundCtx(context.Background(), env, bl, bd)
}

// TurnaroundCtx is Turnaround with cooperative cancellation: the
// list-scheduling loop checks ctx between tasks, so a serving process
// can bound the latency of a single scheduling request. On
// cancellation it returns ctx.Err() (possibly wrapped).
func (s *Scheduler) TurnaroundCtx(ctx context.Context, env Env, bl BLMethod, bd BDMethod) (*Schedule, error) {
	q, err := env.validate()
	if err != nil {
		return nil, err
	}
	exec, err := s.blExec(bl, env.P, q)
	if err != nil {
		return nil, err
	}
	order, err := cpa.PriorityOrder(s.g, exec)
	if err != nil {
		return nil, err
	}
	bound, err := s.bounds(bd, env.P, q)
	if err != nil {
		return nil, err
	}

	avail := s.workingAvail(&env)
	sched := &Schedule{Now: env.Now, Tasks: make([]Placement, s.g.NumTasks())}
	for _, t := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: turnaround scheduling: %w", err)
		}
		ready := env.Now
		for _, pr := range s.g.Predecessors(t) {
			if f := sched.Tasks[pr].End; f > ready {
				ready = f
			}
		}
		task := s.g.Task(t)
		limit := bound[t]
		if limit > env.P {
			limit = env.P
		}
		reqs := s.fitRequests(task.Seq, task.Alpha, limit)
		s.scratchStarts = avail.EarliestFits(reqs, ready, s.scratchStarts)
		bestM, bestStart, bestFinish := 0, model.Time(0), model.Infinity
		for k := range reqs {
			if st := s.scratchStarts[k]; st+reqs[k].Dur < bestFinish {
				bestM, bestStart, bestFinish = reqs[k].Procs, st, st+reqs[k].Dur
			}
		}
		if bestM == 0 {
			return nil, fmt.Errorf("core: no allocation bound for task %d", t)
		}
		if bestFinish > bestStart {
			if err := avail.Reserve(bestStart, bestFinish, bestM); err != nil {
				return nil, fmt.Errorf("core: reserving task %d: %w", t, err)
			}
		}
		sched.Tasks[t] = Placement{Procs: bestM, Start: bestStart, End: bestFinish}
	}
	return sched, nil
}
