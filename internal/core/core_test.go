package core

import (
	"math/rand"
	"testing"

	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

// emptyEnv returns an environment with no competing reservations.
func emptyEnv(p int, now model.Time) Env {
	return Env{P: p, Now: now, Avail: profile.New(p, now)}
}

// busyEnv commits the given reservations to a fresh profile.
func busyEnv(t *testing.T, p int, now model.Time, rs []profile.Reservation) Env {
	t.Helper()
	prof, err := profile.FromReservations(p, now, rs)
	if err != nil {
		t.Fatal(err)
	}
	return Env{P: p, Now: now, Avail: prof}
}

// mustScheduler builds a Scheduler or fails the test.
func mustScheduler(t *testing.T, g *dag.Graph) *Scheduler {
	t.Helper()
	s, err := NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// chainGraph builds a linear chain of n identical tasks.
func chainGraph(n int, seq model.Duration, alpha float64) *dag.Graph {
	g := dag.New(n)
	for i := 0; i < n; i++ {
		g.AddTask(dag.Task{Seq: seq, Alpha: alpha})
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i)
	}
	return g
}

// randomEnv builds a feasible random reservation environment.
func randomEnv(rng *rand.Rand, p int, now model.Time) Env {
	prof := profile.New(p, now)
	for k := 0; k < rng.Intn(20); k++ {
		start := now + model.Time(rng.Int63n(int64(2*model.Day)))
		dur := model.Duration(rng.Int63n(int64(6*model.Hour)) + 600)
		procs := rng.Intn(p) + 1
		if prof.MinFree(start, start+dur) >= procs {
			if err := prof.Reserve(start, start+dur, procs); err != nil {
				panic(err)
			}
		}
	}
	q := 1 + rng.Intn(p)
	return Env{P: p, Now: now, Avail: prof, Q: q}
}

func TestNewSchedulerRejectsBadGraph(t *testing.T) {
	bad := dag.New(2)
	bad.AddTask(dag.Task{Seq: 1})
	bad.AddTask(dag.Task{Seq: 1})
	bad.MustAddEdge(0, 1)
	bad.MustAddEdge(1, 0)
	if _, err := NewScheduler(bad); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestEnvValidation(t *testing.T) {
	g := chainGraph(2, model.Hour, 0.1)
	s := mustScheduler(t, g)
	cases := []Env{
		{P: 0, Now: 0, Avail: profile.New(1, 0)},
		{P: 4, Now: 0, Avail: nil},
		{P: 4, Now: 0, Avail: profile.New(8, 0)},       // capacity mismatch
		{P: 4, Now: 0, Avail: profile.New(4, 100)},     // origin after now
		{P: 4, Now: 0, Avail: profile.New(4, 0), Q: 5}, // q > p
		{P: 4, Now: 0, Avail: profile.New(4, 0), Q: -1},
	}
	for i, env := range cases {
		if _, err := s.Turnaround(env, BLCPAR, BDCPAR); err == nil {
			t.Fatalf("case %d: bad env accepted", i)
		}
	}
}

func TestStringers(t *testing.T) {
	names := map[string]bool{}
	for _, m := range AllBL {
		names[m.String()] = true
	}
	for _, m := range AllBD {
		names[m.String()] = true
	}
	for _, a := range AllDL {
		names[a.String()] = true
	}
	for _, want := range []string{"BL_1", "BL_ALL", "BL_CPA", "BL_CPAR", "BD_ALL", "BD_HALF", "BD_CPA", "BD_CPAR",
		"DL_BD_ALL", "DL_BD_CPA", "DL_BD_CPAR", "DL_RC_CPA", "DL_RC_CPAR", "DL_RC_CPAR-l", "DL_RCBD_CPAR-l"} {
		if !names[want] {
			t.Fatalf("missing algorithm name %q (have %v)", want, names)
		}
	}
	if BLMethod(42).String() == "" || BDMethod(42).String() == "" || DLAlgorithm(42).String() == "" {
		t.Fatal("unknown enum values must still stringify")
	}
}

func TestScheduleMetrics(t *testing.T) {
	s := &Schedule{Now: 100, Tasks: []Placement{
		{Procs: 2, Start: 100, End: 1900}, // 3600 proc-seconds
		{Procs: 4, Start: 200, End: 1100}, // 3600 proc-seconds
	}}
	if got := s.Completion(); got != 1900 {
		t.Fatalf("Completion = %d", got)
	}
	if got := s.Turnaround(); got != 1800 {
		t.Fatalf("Turnaround = %d", got)
	}
	if got := s.ProcSeconds(); got != 7200 {
		t.Fatalf("ProcSeconds = %d", got)
	}
	if got := s.CPUHours(); got != 2 {
		t.Fatalf("CPUHours = %v", got)
	}
}

func TestHistoricalAvail(t *testing.T) {
	// 8-proc cluster; 4 procs reserved for half of the window.
	now := model.Time(2 * model.Week)
	past := []profile.Reservation{{Start: now - model.Week, End: now - model.Week/2, Procs: 4}}
	q, err := HistoricalAvail(8, past, now, model.Week)
	if err != nil {
		t.Fatal(err)
	}
	if q != 6 {
		t.Fatalf("HistoricalAvail = %d, want 6", q)
	}
	// No past data: the machine looks empty.
	q, err = HistoricalAvail(8, nil, now, model.Week)
	if err != nil || q != 8 {
		t.Fatalf("HistoricalAvail(empty) = %d, %v; want 8", q, err)
	}
	// Fully booked window clamps to 1.
	past = []profile.Reservation{{Start: 0, End: 2 * now, Procs: 8}}
	q, err = HistoricalAvail(8, past, now, model.Week)
	if err != nil || q != 1 {
		t.Fatalf("HistoricalAvail(full) = %d, %v; want 1", q, err)
	}
	if _, err := HistoricalAvail(0, nil, now, model.Week); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := HistoricalAvail(8, nil, now, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := chainGraph(2, model.Hour, 0)
	s := mustScheduler(t, g)
	env := emptyEnv(4, 1000)
	sched, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}

	// Break precedence.
	bad := &Schedule{Now: sched.Now, Tasks: append([]Placement(nil), sched.Tasks...)}
	bad.Tasks[1].Start = bad.Tasks[0].Start
	bad.Tasks[1].End = bad.Tasks[1].Start + model.ExecTime(model.Hour, 0, bad.Tasks[1].Procs)
	if err := s.Verify(env, bad); err == nil {
		t.Fatal("precedence violation not caught")
	}

	// Break duration.
	bad = &Schedule{Now: sched.Now, Tasks: append([]Placement(nil), sched.Tasks...)}
	bad.Tasks[0].End--
	if err := s.Verify(env, bad); err == nil {
		t.Fatal("duration violation not caught")
	}

	// Start before now.
	bad = &Schedule{Now: sched.Now, Tasks: append([]Placement(nil), sched.Tasks...)}
	bad.Tasks[0].Start = sched.Now - 10
	bad.Tasks[0].End = bad.Tasks[0].Start + model.ExecTime(model.Hour, 0, bad.Tasks[0].Procs)
	if err := s.Verify(env, bad); err == nil {
		t.Fatal("early start not caught")
	}

	// Too many processors.
	bad = &Schedule{Now: sched.Now, Tasks: append([]Placement(nil), sched.Tasks...)}
	bad.Tasks[0].Procs = 99
	if err := s.Verify(env, bad); err == nil {
		t.Fatal("oversized allocation not caught")
	}

	// Capacity conflict with competing reservations.
	envBusy := busyEnv(t, 4, 1000, []profile.Reservation{{Start: 1000, End: model.Time(1000 + 100*model.Hour), Procs: 4}})
	if err := s.Verify(envBusy, sched); err == nil {
		t.Fatal("overcommit vs competing reservations not caught")
	}

	if err := s.Verify(env, nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	if err := s.Verify(env, &Schedule{Now: env.Now, Tasks: make([]Placement, 1)}); err == nil {
		t.Fatal("wrong-length schedule accepted")
	}
}

func TestVerifyDeadline(t *testing.T) {
	g := chainGraph(2, model.Hour, 0)
	s := mustScheduler(t, g)
	env := emptyEnv(4, 0)
	sched, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeadline(env, sched, sched.Completion()); err != nil {
		t.Fatalf("deadline at completion rejected: %v", err)
	}
	if err := s.VerifyDeadline(env, sched, sched.Completion()-1); err == nil {
		t.Fatal("missed deadline not caught")
	}
}

func TestSchedulerGraphAccessor(t *testing.T) {
	g := chainGraph(3, model.Hour, 0)
	s := mustScheduler(t, g)
	if s.Graph() != g {
		t.Fatal("Graph() does not return the underlying DAG")
	}
}

// --- shared generators for the algorithm test files ---

// randomInstance builds a random application + environment pair used by
// the property tests in turnaround_test.go and deadline_test.go.
func randomInstance(seed int64) (*dag.Graph, Env, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	spec := daggen.Default()
	spec.N = rng.Intn(25) + 3
	spec.Jump = rng.Intn(4) + 1
	spec.Width = float64(rng.Intn(9)+1) / 10
	g := daggen.MustGenerate(spec, rng)
	p := rng.Intn(28) + 4
	now := model.Time(rng.Int63n(int64(model.Week)))
	env := randomEnv(rng, p, now)
	return g, env, rng
}
