package core

import (
	"testing"
	"testing/quick"

	"resched/internal/model"
	"resched/internal/profile"
)

func TestTurnaroundEmptyMachineChain(t *testing.T) {
	// A 3-task chain of fully parallel work on an empty 4-proc cluster:
	// BD_ALL gives each task the whole machine back to back.
	g := chainGraph(3, model.Hour, 0)
	s := mustScheduler(t, g)
	env := emptyEnv(4, 500)
	sched, err := s.Turnaround(env, BL1, BDAll)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatal(err)
	}
	if sched.Turnaround() != 3*900 {
		t.Fatalf("Turnaround = %d, want 2700 (3 x 15 min)", sched.Turnaround())
	}
	for i, pl := range sched.Tasks {
		if pl.Procs != 4 {
			t.Fatalf("task %d allocated %d procs, want the whole machine", i, pl.Procs)
		}
	}
}

func TestTurnaroundWaitsForReservation(t *testing.T) {
	// One task needing the full machine while a competing reservation
	// holds every processor for the first hour.
	g := chainGraph(1, model.Hour, 1) // fully serial: duration is 1h on any alloc
	s := mustScheduler(t, g)
	env := busyEnv(t, 4, 0, []profile.Reservation{{Start: 0, End: model.Hour, Procs: 4}})
	sched, err := s.Turnaround(env, BL1, BDAll)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Start != model.Hour {
		t.Fatalf("task started at %d, want %d (after the competing reservation)", sched.Tasks[0].Start, model.Hour)
	}
}

func TestTurnaroundSqueezesIntoHole(t *testing.T) {
	// 2 of 4 processors stay free during a long competing reservation;
	// a small task should run immediately on the free pair rather than
	// wait for the full machine.
	g := chainGraph(1, model.Hour, 0)
	s := mustScheduler(t, g)
	env := busyEnv(t, 4, 0, []profile.Reservation{{Start: 0, End: 10 * model.Hour, Procs: 2}})
	sched, err := s.Turnaround(env, BL1, BDAll)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Start != 0 || sched.Tasks[0].Procs != 2 {
		t.Fatalf("placement = %+v, want immediate start on 2 procs", sched.Tasks[0])
	}
}

func TestTurnaroundBDHalfBoundsAllocations(t *testing.T) {
	g := chainGraph(4, model.Hour, 0)
	s := mustScheduler(t, g)
	env := emptyEnv(8, 0)
	sched, err := s.Turnaround(env, BL1, BDHalf)
	if err != nil {
		t.Fatal(err)
	}
	for i, pl := range sched.Tasks {
		if pl.Procs > 4 {
			t.Fatalf("task %d allocated %d procs, BD_HALF bound is 4", i, pl.Procs)
		}
	}
}

func TestTurnaroundBDCPARRespectsCPABound(t *testing.T) {
	g, env, _ := randomInstance(7)
	s := mustScheduler(t, g)
	q := env.Q
	if q == 0 {
		q = env.P
	}
	bound, err := s.cpaAlloc(q)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	for i, pl := range sched.Tasks {
		if pl.Procs > bound[i] {
			t.Fatalf("task %d allocated %d procs, CPA bound is %d", i, pl.Procs, bound[i])
		}
	}
}

func TestTurnaroundAllCombinationsValid(t *testing.T) {
	g, env, _ := randomInstance(11)
	s := mustScheduler(t, g)
	for _, bl := range AllBL {
		for _, bd := range AllBD {
			sched, err := s.Turnaround(env, bl, bd)
			if err != nil {
				t.Fatalf("%v/%v: %v", bl, bd, err)
			}
			if err := s.Verify(env, sched); err != nil {
				t.Fatalf("%v/%v: %v", bl, bd, err)
			}
		}
	}
}

func TestTurnaroundUnknownMethods(t *testing.T) {
	g := chainGraph(2, model.Hour, 0)
	s := mustScheduler(t, g)
	env := emptyEnv(4, 0)
	if _, err := s.Turnaround(env, BLMethod(99), BDCPAR); err == nil {
		t.Fatal("unknown BL method accepted")
	}
	if _, err := s.Turnaround(env, BL1, BDMethod(99)); err == nil {
		t.Fatal("unknown BD method accepted")
	}
}

// With Q = P the *_CPAR methods collapse onto their *_CPA
// counterparts: identical bottom levels, identical bounds, identical
// schedules.
func TestCPARCollapsesToCPAWhenQEqualsP(t *testing.T) {
	g, env, _ := randomInstance(17)
	env.Q = env.P
	s := mustScheduler(t, g)
	a, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Turnaround(env, BLCPA, BDCPA)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d: CPAR %+v != CPA %+v with q = p", i, a.Tasks[i], b.Tasks[i])
		}
	}
	// Same collapse for the deadline algorithms.
	k := env.Now + 2*a.Turnaround()
	da, err := s.Deadline(env, DLBDCPAR, k)
	if err != nil {
		t.Fatal(err)
	}
	db, err := s.Deadline(env, DLBDCPA, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range da.Tasks {
		if da.Tasks[i] != db.Tasks[i] {
			t.Fatalf("deadline task %d: CPAR %+v != CPA %+v with q = p", i, da.Tasks[i], db.Tasks[i])
		}
	}
}

// Property: every heuristic produces a verifiable schedule on random
// instances, and single-task turnaround equals the best over all m of
// (earliest fit + duration).
func TestTurnaroundPropertyValid(t *testing.T) {
	f := func(seed int64) bool {
		g, env, _ := randomInstance(seed)
		s, err := NewScheduler(g)
		if err != nil {
			return false
		}
		for _, bd := range AllBD {
			sched, err := s.Turnaround(env, BLCPAR, bd)
			if err != nil {
				return false
			}
			if err := s.Verify(env, sched); err != nil {
				return false
			}
			if sched.Turnaround() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the BD_ALL schedule of a single task achieves the true
// minimum completion over every allocation (exhaustive check).
func TestTurnaroundSingleTaskOptimal(t *testing.T) {
	f := func(seed int64) bool {
		g, env, rng := randomInstance(seed)
		_ = g
		single := chainGraph(1, model.Duration(rng.Intn(7200)+60), rng.Float64())
		s, err := NewScheduler(single)
		if err != nil {
			return false
		}
		sched, err := s.Turnaround(env, BL1, BDAll)
		if err != nil {
			return false
		}
		task := single.Task(0)
		best := model.Infinity
		for m := 1; m <= env.P; m++ {
			d := model.ExecTime(task.Seq, task.Alpha, m)
			st := env.Avail.EarliestFit(m, d, env.Now)
			if st+d < best {
				best = st + d
			}
		}
		return sched.Completion() == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with identical inputs the scheduler is deterministic.
func TestTurnaroundDeterministic(t *testing.T) {
	g, env, _ := randomInstance(5)
	s1 := mustScheduler(t, g)
	s2 := mustScheduler(t, g)
	a, err := s1.Turnaround(env, BLCPA, BDCPA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Turnaround(env, BLCPA, BDCPA)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("nondeterministic placement for task %d: %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
}

// With an empty reservation schedule and q = p, BL_CPA_BD_CPA plays the
// role of plain CPA (paper, end of Section 4.2). Sanity-check that its
// turnaround is bracketed by the two trivial bounds: the critical path
// at unbounded allocations and the fully serialized execution.
func TestTurnaroundReducesToCPAOnEmptyMachine(t *testing.T) {
	g, _, _ := randomInstance(21)
	s := mustScheduler(t, g)
	p := 16
	env := emptyEnv(p, 0)
	sched, err := s.Turnaround(env, BLCPA, BDCPA)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatal(err)
	}
	exec, err := g.ExecTimes(g.UniformAlloc(p))
	if err != nil {
		t.Fatal(err)
	}
	lower, err := g.CriticalPathLength(exec)
	if err != nil {
		t.Fatal(err)
	}
	upper := g.TotalSequentialWork()
	if ta := sched.Turnaround(); ta < lower || ta > upper {
		t.Fatalf("turnaround %d outside [%d, %d]", ta, lower, upper)
	}
}
