package core

import (
	"fmt"

	"resched/internal/model"
	"resched/internal/profile"
)

// Verify checks that a schedule is valid for the given application and
// environment: every task has a reservation of the modeled duration
// within the cluster bounds, starting at or after Now; precedence
// constraints hold; and all task reservations fit into the competing
// reservation profile simultaneously. It is used by the test suite and
// by callers that assemble schedules from external input.
func (s *Scheduler) Verify(env Env, sched *Schedule) error {
	if _, err := env.validate(); err != nil {
		return err
	}
	if sched == nil {
		return fmt.Errorf("core: nil schedule")
	}
	if len(sched.Tasks) != s.g.NumTasks() {
		return fmt.Errorf("core: schedule has %d placements for %d tasks", len(sched.Tasks), s.g.NumTasks())
	}
	avail := env.Avail.CloneIntervals()
	for t, pl := range sched.Tasks {
		task := s.g.Task(t)
		if pl.Procs < 1 || pl.Procs > env.P {
			return fmt.Errorf("core: task %d allocated %d processors on a %d-processor cluster", t, pl.Procs, env.P)
		}
		if pl.Start < env.Now {
			return fmt.Errorf("core: task %d starts at %d before now %d", t, pl.Start, env.Now)
		}
		want := model.ExecTime(task.Seq, task.Alpha, pl.Procs)
		if pl.End-pl.Start != want {
			return fmt.Errorf("core: task %d reserved %d s on %d procs, model says %d s", t, pl.End-pl.Start, pl.Procs, want)
		}
		for _, pr := range s.g.Predecessors(t) {
			if sched.Tasks[pr].End > pl.Start {
				return fmt.Errorf("core: task %d starts at %d before predecessor %d finishes at %d", t, pl.Start, pr, sched.Tasks[pr].End)
			}
		}
		if pl.End > pl.Start {
			if err := avail.Reserve(pl.Start, pl.End, pl.Procs); err != nil {
				return fmt.Errorf("core: task %d overcommits the cluster: %w", t, err)
			}
		}
	}
	return nil
}

// VerifyDeadline is Verify plus the deadline constraint.
func (s *Scheduler) VerifyDeadline(env Env, sched *Schedule, deadline model.Time) error {
	if err := s.Verify(env, sched); err != nil {
		return err
	}
	if c := sched.Completion(); c > deadline {
		return fmt.Errorf("core: schedule completes at %d, after deadline %d", c, deadline)
	}
	return nil
}

// HistoricalAvail estimates q, the historical average number of
// available processors (Section 4.2), from the reservations that were
// active during the window days preceding now. The result is rounded to
// the nearest integer and clamped to [1, p]. With no past data it
// returns p (an empty machine).
func HistoricalAvail(p int, past []profile.Reservation, now model.Time, window model.Duration) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: cluster size %d < 1", p)
	}
	if window <= 0 {
		return 0, fmt.Errorf("core: window %d <= 0", window)
	}
	start := now - window
	prof, err := profile.FromReservations(p, start, clipReservations(past, start, now))
	if err != nil {
		return 0, err
	}
	avg := prof.AvgFree(start, now)
	q := int(avg + 0.5)
	if q < 1 {
		q = 1
	}
	if q > p {
		q = p
	}
	return q, nil
}

// clipReservations clips reservations to the [start, end) window and
// drops those fully outside it.
func clipReservations(rs []profile.Reservation, start, end model.Time) []profile.Reservation {
	var out []profile.Reservation
	for _, r := range rs {
		s, e := r.Start, r.End
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		if e <= s {
			continue
		}
		out = append(out, profile.Reservation{Start: s, End: e, Procs: r.Procs})
	}
	return out
}
