package core

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"resched/internal/model"
	"resched/internal/profile"
)

func TestDeadlineAggressiveSchedulesLate(t *testing.T) {
	// A single fully-serial one-hour task with a generous deadline:
	// the aggressive algorithm must start it as late as possible.
	g := chainGraph(1, model.Hour, 1)
	s := mustScheduler(t, g)
	env := emptyEnv(4, 0)
	deadline := model.Time(10 * model.Hour)
	sched, err := s.Deadline(env, DLBDAll, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeadline(env, sched, deadline); err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Start != 9*model.Hour {
		t.Fatalf("start = %d, want %d (latest possible)", sched.Tasks[0].Start, 9*model.Hour)
	}
}

func TestDeadlineInfeasible(t *testing.T) {
	g := chainGraph(3, model.Hour, 1) // serial chain needs 3 hours no matter what
	s := mustScheduler(t, g)
	env := emptyEnv(4, 0)
	for _, algo := range AllDL {
		_, err := s.Deadline(env, algo, 2*model.Hour)
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%v: want ErrInfeasible, got %v", algo, err)
		}
	}
	// Deadline before now.
	if _, err := s.Deadline(Env{P: 4, Now: 100, Avail: profile.New(4, 0)}, DLBDCPA, 50); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("deadline before now: %v", err)
	}
}

func TestDeadlineExactlyFeasible(t *testing.T) {
	g := chainGraph(2, model.Hour, 1)
	s := mustScheduler(t, g)
	env := emptyEnv(2, 0)
	sched, err := s.Deadline(env, DLBDCPA, 2*model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeadline(env, sched, 2*model.Hour); err != nil {
		t.Fatal(err)
	}
	// Zero slack: tasks must be back to back.
	if sched.Tasks[0].Start != 0 || sched.Tasks[1].End != 2*model.Hour {
		t.Fatalf("placements %+v not tight", sched.Tasks)
	}
}

func TestDeadlineRespectsCompetingReservations(t *testing.T) {
	// Machine fully reserved during [1h, 9h); a serial 1h task with a
	// 10h deadline must run in [9h, 10h).
	g := chainGraph(1, model.Hour, 1)
	s := mustScheduler(t, g)
	env := busyEnv(t, 4, 0, []profile.Reservation{{Start: model.Hour, End: 9 * model.Hour, Procs: 4}})
	sched, err := s.Deadline(env, DLBDCPA, 10*model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeadline(env, sched, 10*model.Hour); err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Start != 9*model.Hour {
		t.Fatalf("start = %d, want %d", sched.Tasks[0].Start, 9*model.Hour)
	}
	// With a 5h deadline the only hole is [0, 1h).
	sched, err = s.Deadline(env, DLBDCPA, 5*model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Start != 0 {
		t.Fatalf("start = %d, want 0 (before the competing block)", sched.Tasks[0].Start)
	}
}

func TestDeadlineRCUsesFewerResourcesWhenLoose(t *testing.T) {
	// Parallel-friendly chain with a loose deadline: the resource
	// conservative algorithm must consume no more CPU-hours than the
	// aggressive one.
	g := chainGraph(4, 2*model.Hour, 0.05)
	s := mustScheduler(t, g)
	env := emptyEnv(16, 0)
	env.Q = 16
	deadline := model.Time(48 * model.Hour)

	agg, err := s.Deadline(env, DLBDCPA, deadline)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := s.Deadline(env, DLRCCPAR, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeadline(env, rc, deadline); err != nil {
		t.Fatal(err)
	}
	if rc.CPUHours() > agg.CPUHours() {
		t.Fatalf("RC used %.2f CPU-hours, aggressive %.2f; RC must be no worse on a loose deadline",
			rc.CPUHours(), agg.CPUHours())
	}
	// With 48 hours of slack for 8 hours of serial-chain work, the RC
	// candidate starts sit far past the CPA reference for every task:
	// each gets a single processor (Section 5.2.2's design goal).
	for i, pl := range rc.Tasks {
		if pl.Procs != 1 {
			t.Fatalf("task %d allocated %d procs despite 48h of slack", i, pl.Procs)
		}
	}
}

// The RC pick schedules each task at the latest feasible start of its
// cheapest passing allocation (DESIGN.md Section 6b): on an empty
// machine with a loose deadline, the sink runs on one processor ending
// exactly at the deadline.
func TestDeadlineRCLatestFitSemantics(t *testing.T) {
	g := chainGraph(2, model.Hour, 1)
	s := mustScheduler(t, g)
	env := emptyEnv(8, 0)
	deadline := model.Time(24 * model.Hour)
	sched, err := s.Deadline(env, DLRCCPAR, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeadline(env, sched, deadline); err != nil {
		t.Fatal(err)
	}
	sink := sched.Tasks[1]
	if sink.Procs != 1 || sink.End != deadline {
		t.Fatalf("sink = %+v, want 1 proc ending at the deadline", sink)
	}
	head := sched.Tasks[0]
	if head.Procs != 1 || head.End != sink.Start {
		t.Fatalf("head = %+v, want 1 proc back-to-back with the sink at %d", head, sink.Start)
	}
}

func TestDeadlineLambdaFallsBackToAggressive(t *testing.T) {
	// Tight deadline: plain RC (lambda 0) may fail, but the lambda
	// sweep must find the aggressive end and succeed whenever the
	// aggressive algorithm does.
	g := chainGraph(3, model.Hour, 0.1)
	s := mustScheduler(t, g)
	env := emptyEnv(8, 0)
	env.Q = 2 // pessimistic historical estimate forces a conservative reference
	tight, _, err := s.TightestDeadline(env, DLBDCPA)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Deadline(env, DLRCCPARLambda, tight)
	if err != nil {
		t.Fatalf("lambda sweep failed at the aggressive algorithm's tightest deadline: %v", err)
	}
	if err := s.VerifyDeadline(env, sched, tight); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineUnknownAlgorithm(t *testing.T) {
	g := chainGraph(1, model.Hour, 0)
	s := mustScheduler(t, g)
	if _, err := s.Deadline(emptyEnv(2, 0), DLAlgorithm(99), model.Hour); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// Property: all deadline algorithms produce schedules that verify and
// meet the deadline, across random instances with a deadline set to
// twice the forward schedule's turnaround.
func TestDeadlinePropertyValid(t *testing.T) {
	f := func(seed int64) bool {
		g, env, _ := randomInstance(seed)
		s, err := NewScheduler(g)
		if err != nil {
			return false
		}
		fwd, err := s.Turnaround(env, BLCPAR, BDCPAR)
		if err != nil {
			return false
		}
		deadline := env.Now + 2*fwd.Turnaround()
		for _, algo := range AllDL {
			sched, err := s.Deadline(env, algo, deadline)
			if errors.Is(err, ErrInfeasible) {
				continue // allowed: heuristics may fail on tight instances
			}
			if err != nil {
				return false
			}
			if err := s.VerifyDeadline(env, sched, deadline); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// The paper's headline deadline result is statistical, not
// per-instance: at loose deadlines the resource-conservative hybrid
// consumes far fewer CPU-hours than the aggressive algorithm *on
// average* (Tables 6 and 7). Individual instances can go the other way
// when RC's unbounded fallback fires, so this test aggregates over a
// batch of random instances.
func TestDeadlineRCSavesCPUHoursOnAverage(t *testing.T) {
	var aggTotal, rcTotal float64
	compared := 0
	for seed := int64(0); seed < 25; seed++ {
		g, env, _ := randomInstance(seed)
		s := mustScheduler(t, g)
		fwd, err := s.Turnaround(env, BLCPAR, BDCPAR)
		if err != nil {
			t.Fatal(err)
		}
		deadline := env.Now + 4*fwd.Turnaround()
		agg, errA := s.Deadline(env, DLBDCPA, deadline)
		rc, errR := s.Deadline(env, DLRCCPARLambda, deadline)
		if errA != nil || errR != nil {
			continue
		}
		aggTotal += agg.CPUHours()
		rcTotal += rc.CPUHours()
		compared++
	}
	if compared < 10 {
		t.Fatalf("only %d comparable instances", compared)
	}
	if rcTotal > aggTotal {
		t.Fatalf("RC-lambda used %.1f CPU-hours over %d instances, aggressive %.1f; RC must save on average",
			rcTotal, compared, aggTotal)
	}
}

func TestTightestDeadlineBracketsForwardSchedule(t *testing.T) {
	g, env, _ := randomInstance(33)
	s := mustScheduler(t, g)
	exec, err := g.ExecTimes(g.UniformAlloc(env.P))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.CriticalPathLength(exec)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []DLAlgorithm{DLBDCPA, DLBDCPAR, DLRCCPARLambda} {
		k, sched, err := s.TightestDeadline(env, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := s.VerifyDeadline(env, sched, k); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if k < env.Now+cp {
			t.Fatalf("%v: tightest deadline %d beats the critical-path bound %d", algo, k, env.Now+cp)
		}
	}
}

func TestTightestDeadlineGranularity(t *testing.T) {
	g := chainGraph(2, model.Hour, 1)
	s := mustScheduler(t, g)
	env := emptyEnv(4, 0)
	k, _, err := s.TightestDeadlineGranularity(context.Background(), env, DLBDCPA, model.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The serial chain needs exactly 2 hours.
	if k != 2*model.Hour {
		t.Fatalf("tightest deadline = %d, want %d", k, 2*model.Hour)
	}
	// Default granularity must land within a minute of the true value.
	k, _, err = s.TightestDeadline(env, DLBDCPA)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2*model.Hour || k > 2*model.Hour+model.Minute {
		t.Fatalf("tightest deadline = %d, want within a minute above %d", k, 2*model.Hour)
	}
}

func TestTightestDeadlineEnvValidation(t *testing.T) {
	g := chainGraph(1, model.Hour, 0)
	s := mustScheduler(t, g)
	if _, _, err := s.TightestDeadline(Env{P: 0}, DLBDCPA); err == nil {
		t.Fatal("bad env accepted")
	}
}
