package core

import "testing"

// TestParseRoundTrip checks that every algorithm name the library
// prints is parsed back to the same value — the contract the HTTP API
// relies on when resolving heuristics from request bodies.
func TestParseRoundTrip(t *testing.T) {
	for _, m := range AllBL {
		got, err := ParseBL(m.String())
		if err != nil {
			t.Errorf("ParseBL(%q): %v", m.String(), err)
		} else if got != m {
			t.Errorf("ParseBL(%q) = %v, want %v", m.String(), got, m)
		}
	}
	for _, m := range AllBD {
		got, err := ParseBD(m.String())
		if err != nil {
			t.Errorf("ParseBD(%q): %v", m.String(), err)
		} else if got != m {
			t.Errorf("ParseBD(%q) = %v, want %v", m.String(), got, m)
		}
	}
	for _, a := range AllDL {
		got, err := ParseDL(a.String())
		if err != nil {
			t.Errorf("ParseDL(%q): %v", a.String(), err)
		} else if got != a {
			t.Errorf("ParseDL(%q) = %v, want %v", a.String(), got, a)
		}
	}
}

func TestParseRejectsUnknownNames(t *testing.T) {
	bad := []string{
		"",
		"BL_XXX",
		"bl_cpar",           // lower case
		"BL_CPAR ",          // trailing space
		" BD_CPAR",          // leading space
		"BD-CPAR",           // wrong separator
		"DL_RC",             // truncated
		"DL_RC_CPAR-lambda", // the paper spells the suffix "-l"
		"BLMethod(7)",
	}
	for _, name := range bad {
		if _, err := ParseBL(name); err == nil {
			t.Errorf("ParseBL(%q) accepted", name)
		}
		if _, err := ParseBD(name); err == nil {
			t.Errorf("ParseBD(%q) accepted", name)
		}
		if _, err := ParseDL(name); err == nil {
			t.Errorf("ParseDL(%q) accepted", name)
		}
	}

	// Names valid in one family must not leak into another.
	if _, err := ParseBL("BD_CPAR"); err == nil {
		t.Error("ParseBL accepted a BD name")
	}
	if _, err := ParseBD("BL_CPAR"); err == nil {
		t.Error("ParseBD accepted a BL name")
	}
	if _, err := ParseDL("BD_CPAR"); err == nil {
		t.Error("ParseDL accepted a BD name")
	}
}
