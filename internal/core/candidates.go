package core

import "resched/internal/model"

// allocCandidates returns the allocation sizes in [1, bound] worth
// probing for a task: the smallest m for each distinct (whole-second)
// execution time. For two allocations with equal duration the smaller
// one dominates in every search this package performs — it is no harder
// to fit (EarliestFit can only be earlier or equal, LatestFit later or
// equal) and consumes fewer processor-hours — so skipping the larger
// ones changes no scheduling decision, only the constant factor.
func allocCandidates(seq model.Duration, alpha float64, bound int) []int {
	return appendAllocCandidates(nil, seq, alpha, bound)
}

// appendAllocCandidates is allocCandidates with a caller-owned buffer:
// candidates are appended to dst (usually scratch[:0]) so the per-task
// inner loop of the schedulers allocates nothing once the buffer has
// grown to its steady size.
func appendAllocCandidates(dst []int, seq model.Duration, alpha float64, bound int) []int {
	if bound < 1 {
		return dst
	}
	prev := model.Duration(-1)
	for m := 1; m <= bound; m++ {
		d := model.ExecTime(seq, alpha, m)
		if d != prev {
			dst = append(dst, m)
			prev = d
		}
		if d <= 1 {
			break // durations cannot shrink further
		}
	}
	return dst
}
