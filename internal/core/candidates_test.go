package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/model"
)

func TestAllocCandidatesBasics(t *testing.T) {
	// A fully serial task has one distinct duration: only m=1 matters.
	cands := allocCandidates(3600, 1, 64)
	if len(cands) != 1 || cands[0] != 1 {
		t.Fatalf("serial task candidates = %v", cands)
	}
	// A fully parallel task changes duration at every power step until
	// hitting 1 second; candidates must start at 1 and be increasing.
	cands = allocCandidates(3600, 0, 64)
	if cands[0] != 1 {
		t.Fatalf("candidates = %v", cands)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Fatalf("candidates not increasing: %v", cands)
		}
	}
	if got := allocCandidates(3600, 0.2, 0); got != nil {
		t.Fatalf("bound 0 candidates = %v", got)
	}
}

// Property: the candidate set covers every distinct execution time in
// [1, bound], each at its smallest allocation.
func TestAllocCandidatesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := model.Duration(rng.Intn(36000) + 60)
		alpha := rng.Float64()
		bound := rng.Intn(300) + 1
		cands := allocCandidates(seq, alpha, bound)
		set := make(map[int]bool, len(cands))
		for _, m := range cands {
			set[m] = true
		}
		seen := make(map[model.Duration]bool)
		for m := 1; m <= bound; m++ {
			d := model.ExecTime(seq, alpha, m)
			if !seen[d] {
				// First (smallest) m achieving d must be a candidate.
				if !set[m] {
					return false
				}
				seen[d] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: pruned search is behavior-identical to exhaustive search
// for the earliest-completion placement rule.
func TestAllocCandidatesEquivalentSearch(t *testing.T) {
	f := func(seed int64) bool {
		g, env, rng := randomInstance(seed)
		_ = g
		seq := model.Duration(rng.Intn(7200) + 60)
		alpha := rng.Float64()
		// Exhaustive.
		bestM, bestF := 0, model.Infinity
		for m := 1; m <= env.P; m++ {
			d := model.ExecTime(seq, alpha, m)
			st := env.Avail.EarliestFit(m, d, env.Now)
			if st+d < bestF {
				bestM, bestF = m, st+d
			}
		}
		// Pruned.
		prunedM, prunedF := 0, model.Infinity
		for _, m := range allocCandidates(seq, alpha, env.P) {
			d := model.ExecTime(seq, alpha, m)
			st := env.Avail.EarliestFit(m, d, env.Now)
			if st+d < prunedF {
				prunedM, prunedF = m, st+d
			}
		}
		return bestM == prunedM && bestF == prunedF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
