package core

import (
	"context"
	"errors"
	"fmt"

	"resched/internal/model"
)

// DefaultGranularity is the resolution of the tightest-deadline binary
// search: one minute, the granularity of the paper's task durations.
const DefaultGranularity model.Duration = model.Minute

// maxDoublings bounds the search for a feasible upper deadline.
const maxDoublings = 24

// TightestDeadline finds, by binary search (Section 5.3), the earliest
// deadline the given algorithm can meet, within the given granularity
// (DefaultGranularity if zero or negative). It returns the deadline and
// the corresponding schedule.
//
// Deadline feasibility under these heuristics is not strictly monotone
// in K; as in the paper, the binary search treats it as if it were and
// returns the tightest deadline it certifies feasible.
func (s *Scheduler) TightestDeadline(env Env, algo DLAlgorithm) (model.Time, *Schedule, error) {
	return s.TightestDeadlineCtx(context.Background(), env, algo)
}

// TightestDeadlineCtx is TightestDeadline with cooperative
// cancellation: ctx is checked between binary-search probes and inside
// each probe's scheduling loop.
func (s *Scheduler) TightestDeadlineCtx(ctx context.Context, env Env, algo DLAlgorithm) (model.Time, *Schedule, error) {
	return s.TightestDeadlineGranularity(ctx, env, algo, DefaultGranularity)
}

// TightestDeadlineGranularity is TightestDeadlineCtx with an explicit
// search resolution.
func (s *Scheduler) TightestDeadlineGranularity(ctx context.Context, env Env, algo DLAlgorithm, granularity model.Duration) (model.Time, *Schedule, error) {
	if granularity <= 0 {
		granularity = DefaultGranularity
	}
	if _, err := env.validate(); err != nil {
		return 0, nil, err
	}

	// Lower bound: even an empty machine cannot beat the critical path
	// with every task on all p processors.
	exec, err := s.g.ExecTimes(s.g.UniformAlloc(env.P))
	if err != nil {
		return 0, nil, err
	}
	cp, err := s.g.CriticalPathLength(exec)
	if err != nil {
		return 0, nil, err
	}
	lo := env.Now + cp // invariant: lo-granularity is infeasible or lo is the floor

	// A feasible starting point: the turn-around-optimized forward
	// schedule's completion time, doubled until the backward algorithm
	// accepts it.
	fwd, err := s.TurnaroundCtx(ctx, env, BLCPAR, BDCPAR)
	if err != nil {
		return 0, nil, err
	}
	hi := fwd.Completion()
	if hi < lo {
		hi = lo
	}
	best, err := s.DeadlineCtx(ctx, env, algo, hi)
	for n := 0; err != nil && errors.Is(err, ErrInfeasible) && n < maxDoublings; n++ {
		gap := hi - env.Now
		if gap < granularity {
			gap = granularity
		}
		hi = env.Now + 2*gap
		best, err = s.DeadlineCtx(ctx, env, algo, hi)
	}
	if err != nil {
		return 0, nil, fmt.Errorf("core: no feasible deadline found up to %d: %w", hi, err)
	}

	// Binary search between the infeasible floor and the feasible hi.
	if lo > hi {
		lo = hi
	}
	for hi-lo > granularity {
		if err := ctx.Err(); err != nil {
			return 0, nil, fmt.Errorf("core: tightest-deadline search: %w", err)
		}
		mid := lo + (hi-lo)/2
		sched, err := s.DeadlineCtx(ctx, env, algo, mid)
		switch {
		case err == nil:
			hi, best = mid, sched
		case errors.Is(err, ErrInfeasible):
			lo = mid
		default:
			return 0, nil, err
		}
	}
	return hi, best, nil
}
