package core

import (
	"math/rand"
	"testing"

	"resched/internal/cpa"
	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

// bestFixedAllocMakespan exhaustively enumerates every allocation
// vector in [1,p]^n, list-schedules each against the environment with
// the same earliest-completion placement rule, and returns the best
// completion time found. Only feasible for tiny instances; it gives an
// absolute quality reference for the heuristics.
func bestFixedAllocMakespan(t *testing.T, g *dag.Graph, env Env) model.Time {
	t.Helper()
	n := g.NumTasks()
	alloc := make([]int, n)
	best := model.Infinity
	var recurse func(i int)
	recurse = func(i int) {
		if i == n {
			c, ok := fixedAllocCompletion(g, env, alloc)
			if ok && c < best {
				best = c
			}
			return
		}
		for m := 1; m <= env.P; m++ {
			alloc[i] = m
			recurse(i + 1)
		}
	}
	recurse(0)
	if best == model.Infinity {
		t.Fatal("no feasible fixed allocation found")
	}
	return best
}

// fixedAllocCompletion list-schedules the graph with a fixed
// allocation vector against the environment.
func fixedAllocCompletion(g *dag.Graph, env Env, alloc []int) (model.Time, bool) {
	exec, err := g.ExecTimes(alloc)
	if err != nil {
		return 0, false
	}
	order, err := cpa.PriorityOrder(g, exec)
	if err != nil {
		return 0, false
	}
	avail := env.Avail.CloneIntervals()
	finish := make([]model.Time, g.NumTasks())
	completion := env.Now
	for _, t := range order {
		ready := env.Now
		for _, pr := range g.Predecessors(t) {
			if finish[pr] > ready {
				ready = finish[pr]
			}
		}
		st := avail.EarliestFit(alloc[t], exec[t], ready)
		if exec[t] > 0 {
			if err := avail.Reserve(st, st+exec[t], alloc[t]); err != nil {
				return 0, false
			}
		}
		finish[t] = st + exec[t]
		if finish[t] > completion {
			completion = finish[t]
		}
	}
	return completion, true
}

// TestHeuristicQualityAgainstExhaustive compares BD_CPAR's turnaround
// against the best fixed-allocation list schedule found by brute force
// on tiny instances. The heuristic is not optimal, but it must stay
// within a factor 2 on every one of these fixed cases (empirically it
// lands within ~25%).
func TestHeuristicQualityAgainstExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search")
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// 4 tasks, 4 processors: 4^4 = 256 allocation vectors.
		g := dag.New(4)
		for i := 0; i < 4; i++ {
			g.AddTask(dag.Task{
				Seq:   model.Duration(rng.Intn(4*int(model.Hour)) + int(model.Minute)),
				Alpha: rng.Float64() * 0.3,
			})
		}
		// A random small DAG shape.
		g.MustAddEdge(0, 1)
		if rng.Intn(2) == 0 {
			g.MustAddEdge(0, 2)
		} else {
			g.MustAddEdge(1, 2)
		}
		g.MustAddEdge(2, 3)

		prof := profile.New(4, 0)
		if rng.Intn(2) == 0 {
			start := model.Time(rng.Intn(int(2 * model.Hour)))
			if err := prof.Reserve(start, start+model.Hour, rng.Intn(3)+1); err != nil {
				t.Fatal(err)
			}
		}
		env := Env{P: 4, Now: 0, Avail: prof, Q: 4}

		opt := bestFixedAllocMakespan(t, g, env)
		s := mustScheduler(t, g)
		sched, err := s.Turnaround(env, BLCPAR, BDCPAR)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(env, sched); err != nil {
			t.Fatal(err)
		}
		if got := sched.Completion(); got > 2*opt {
			t.Fatalf("seed %d: BD_CPAR completion %d vs exhaustive best %d (over 2x)", seed, got, opt)
		}
	}
}
