package core

import (
	"testing"

	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

// zeroGraph embeds a zero-work task (a pure synchronization point)
// between two real tasks. The DAG model allows Seq = 0 even though the
// paper's generator never produces it; the schedulers must cope.
func zeroGraph() *dag.Graph {
	g := dag.New(3)
	g.AddTask(dag.Task{Name: "work1", Seq: model.Hour, Alpha: 0.1})
	g.AddTask(dag.Task{Name: "barrier", Seq: 0, Alpha: 0})
	g.AddTask(dag.Task{Name: "work2", Seq: model.Hour, Alpha: 0.1})
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	return g
}

func TestTurnaroundZeroWorkTask(t *testing.T) {
	g := zeroGraph()
	s := mustScheduler(t, g)
	env := emptyEnv(8, 100)
	sched, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatal(err)
	}
	if pl := sched.Tasks[1]; pl.Start != pl.End {
		t.Fatalf("zero-work task got a non-empty reservation: %+v", pl)
	}
	// The barrier must not delay the pipeline.
	if sched.Tasks[2].Start != sched.Tasks[0].End {
		t.Fatalf("barrier introduced a delay: %+v", sched.Tasks)
	}
}

func TestDeadlineZeroWorkTask(t *testing.T) {
	g := zeroGraph()
	s := mustScheduler(t, g)
	env := emptyEnv(8, 0)
	for _, algo := range AllDL {
		sched, err := s.Deadline(env, algo, 6*model.Hour)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := s.VerifyDeadline(env, sched, 6*model.Hour); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

func TestSingleTaskGraphAllAlgorithms(t *testing.T) {
	g := dag.New(1)
	g.AddTask(dag.Task{Seq: model.Hour, Alpha: 0.2})
	s := mustScheduler(t, g)
	env := busyEnv(t, 4, 0, []profile.Reservation{{Start: 0, End: model.Hour / 2, Procs: 4}})
	for _, bd := range AllBD {
		sched, err := s.Turnaround(env, BLCPAR, bd)
		if err != nil {
			t.Fatalf("%v: %v", bd, err)
		}
		if err := s.Verify(env, sched); err != nil {
			t.Fatalf("%v: %v", bd, err)
		}
	}
	for _, algo := range AllDL {
		k, sched, err := s.TightestDeadline(env, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := s.VerifyDeadline(env, sched, k); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

func TestTurnaroundOnSaturatedMachine(t *testing.T) {
	// Everything is reserved for a week; the application must start
	// after the wall and still verify.
	g := chainGraph(3, model.Hour, 0.1)
	s := mustScheduler(t, g)
	env := busyEnv(t, 4, 0, []profile.Reservation{{Start: 0, End: model.Week, Procs: 4}})
	sched, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Start < model.Week {
		t.Fatalf("schedule started inside the full-machine reservation: %+v", sched.Tasks[0])
	}
}

func TestDeadlineJustAfterWall(t *testing.T) {
	// Machine free only in [0, 1h) and after a week. A 1-hour serial
	// task with a 2h deadline must squeeze into the first hole.
	g := chainGraph(1, model.Hour, 1)
	s := mustScheduler(t, g)
	env := busyEnv(t, 4, 0, []profile.Reservation{{Start: model.Hour, End: model.Week, Procs: 4}})
	sched, err := s.Deadline(env, DLBDCPAR, 2*model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Tasks[0].Start != 0 {
		t.Fatalf("start = %d, want 0", sched.Tasks[0].Start)
	}
	// With a 30-minute deadline it is infeasible.
	if _, err := s.Deadline(env, DLBDCPAR, model.Hour/2); err == nil {
		t.Fatal("infeasible deadline accepted")
	}
}

func TestEnvQDefaultsToP(t *testing.T) {
	g := chainGraph(2, model.Hour, 0.1)
	s := mustScheduler(t, g)
	env := emptyEnv(8, 0) // Q == 0
	a, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	env.Q = 8
	b, err := s.Turnaround(env, BLCPAR, BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("Q=0 and Q=P disagree at task %d", i)
		}
	}
}
