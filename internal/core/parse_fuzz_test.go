package core

import "testing"

// FuzzScheduleParseRoundTrip checks the BL/BD/DL name parsers against
// arbitrary strings: parsing never panics, any accepted name renders
// back to exactly the string that was parsed (parse∘String identity),
// and rejection comes with the error naming the offending input. The
// seed corpus is every name the library defines, so the accept paths
// are exercised from the first run.
func FuzzScheduleParseRoundTrip(f *testing.F) {
	for _, m := range AllBL {
		f.Add(m.String())
	}
	for _, m := range AllBD {
		f.Add(m.String())
	}
	for _, a := range AllDL {
		f.Add(a.String())
	}
	f.Add("")
	f.Add("BL_")
	f.Add("DL_RC_CPAR-λ")
	f.Fuzz(func(t *testing.T, name string) {
		if m, err := ParseBL(name); err == nil {
			if got := m.String(); got != name {
				t.Errorf("ParseBL(%q).String() = %q", name, got)
			}
		} else if m2, err2 := ParseBL(name); err2 == nil || m2 != m {
			t.Errorf("ParseBL(%q) not deterministic", name)
		}
		if m, err := ParseBD(name); err == nil {
			if got := m.String(); got != name {
				t.Errorf("ParseBD(%q).String() = %q", name, got)
			}
		}
		if a, err := ParseDL(name); err == nil {
			if got := a.String(); got != name {
				t.Errorf("ParseDL(%q).String() = %q", name, got)
			}
		}
	})
}
