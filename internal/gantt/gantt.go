// Package gantt renders application schedules as ASCII timelines: one
// bar per task reservation plus a cluster-load band showing how the
// application's reservations stack on top of the competing ones. It
// backs the ressched -gantt flag and is handy in tests when a schedule
// looks wrong.
package gantt

import (
	"fmt"
	"io"
	"strings"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/model"
)

// DefaultWidth is the rendered timeline width in characters.
const DefaultWidth = 72

// loadRamp maps a utilization fraction to a density character.
var loadRamp = []byte(" .:-=+*#%@")

// Render writes the schedule as a Gantt chart. The time axis spans
// [env.Now, completion]; width columns of resolution (DefaultWidth if
// width <= 0).
func Render(w io.Writer, g *dag.Graph, env core.Env, s *core.Schedule, width int) error {
	if width <= 0 {
		width = DefaultWidth
	}
	if len(s.Tasks) != g.NumTasks() {
		return fmt.Errorf("gantt: schedule has %d placements for %d tasks", len(s.Tasks), g.NumTasks())
	}
	end := s.Completion()
	if end <= env.Now {
		return fmt.Errorf("gantt: empty schedule window [%d, %d]", env.Now, end)
	}
	span := end - env.Now
	colDur := float64(span) / float64(width)
	col := func(t model.Time) int {
		c := int(float64(t-env.Now) / colDur)
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time axis: %d .. %d s (%.2f h), one column = %.0f s\n",
		env.Now, end, float64(span)/float64(model.Hour), colDur)

	nameWidth := 6
	for i := 0; i < g.NumTasks(); i++ {
		if n := len(taskName(g, i)); n > nameWidth {
			nameWidth = n
		}
	}
	for i := 0; i < g.NumTasks(); i++ {
		pl := s.Tasks[i]
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		lo, hi := col(pl.Start), col(pl.End-1)
		for j := lo; j <= hi; j++ {
			row[j] = '#'
		}
		fmt.Fprintf(&b, "%-*s |%s| %d procs\n", nameWidth, taskName(g, i), row, pl.Procs)
	}

	// Cluster load band: competing reservations plus the application's
	// own, sampled per column.
	app := env.Avail.Flat()
	for _, pl := range s.Tasks {
		if pl.End > pl.Start {
			if err := app.Reserve(pl.Start, pl.End, pl.Procs); err != nil {
				return fmt.Errorf("gantt: schedule does not fit its environment: %w", err)
			}
		}
	}
	bands := [2]struct {
		label string
		prof  interface{ ReservedAt(model.Time) int }
	}{
		{"load", app},
		{"bg", env.Avail},
	}
	for _, band := range bands {
		row := make([]byte, width)
		for j := 0; j < width; j++ {
			t := env.Now + model.Time(float64(j)*colDur)
			frac := float64(band.prof.ReservedAt(t)) / float64(env.P)
			idx := int(frac * float64(len(loadRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(loadRamp) {
				idx = len(loadRamp) - 1
			}
			row[j] = loadRamp[idx]
		}
		fmt.Fprintf(&b, "%-*s |%s| of %d procs\n", nameWidth, band.label, row, env.P)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func taskName(g *dag.Graph, i int) string {
	if n := g.Task(i).Name; n != "" {
		return n
	}
	return fmt.Sprintf("t%d", i)
}
