package gantt

import (
	"math/rand"
	"strings"
	"testing"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

func testSchedule(t *testing.T) (*dag.Graph, core.Env, *core.Schedule) {
	t.Helper()
	g := dag.New(3)
	g.AddTask(dag.Task{Name: "alpha", Seq: model.Hour, Alpha: 0.1})
	g.AddTask(dag.Task{Seq: 2 * model.Hour, Alpha: 0.1})
	g.AddTask(dag.Task{Name: "omega", Seq: model.Hour, Alpha: 0.1})
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	prof := profile.New(8, 0)
	if err := prof.Reserve(0, model.Hour, 4); err != nil {
		t.Fatal(err)
	}
	env := core.Env{P: 8, Now: 0, Avail: prof}
	s, err := core.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Turnaround(env, core.BL1, core.BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	return g, env, sched
}

func TestRenderBasics(t *testing.T) {
	g, env, sched := testSchedule(t)
	var b strings.Builder
	if err := Render(&b, g, env, sched, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"alpha", "t1", "omega", "load", "bg", "time axis", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Every task row must contain at least one bar cell.
	lines := strings.Split(out, "\n")
	bars := 0
	for _, l := range lines {
		if strings.Contains(l, "procs") && strings.Contains(l, "#") {
			bars++
		}
	}
	if bars != 3 {
		t.Fatalf("want 3 task bars, got %d:\n%s", bars, out)
	}
}

func TestRenderDefaultWidth(t *testing.T) {
	g, env, sched := testSchedule(t)
	var b strings.Builder
	if err := Render(&b, g, env, sched, 0); err != nil {
		t.Fatal(err)
	}
	// Bars are DefaultWidth wide between the pipes.
	for _, l := range strings.Split(b.String(), "\n") {
		if i := strings.IndexByte(l, '|'); i >= 0 {
			j := strings.LastIndexByte(l, '|')
			if j-i-1 != DefaultWidth {
				t.Fatalf("row width %d, want %d: %q", j-i-1, DefaultWidth, l)
			}
		}
	}
}

func TestRenderErrors(t *testing.T) {
	g, env, sched := testSchedule(t)
	var b strings.Builder
	if err := Render(&b, g, env, &core.Schedule{Now: env.Now, Tasks: sched.Tasks[:1]}, 40); err == nil {
		t.Fatal("wrong-length schedule accepted")
	}
	if err := Render(&b, g, env, &core.Schedule{Now: env.Now, Tasks: make([]core.Placement, 3)}, 40); err == nil {
		t.Fatal("empty window accepted")
	}
	// A schedule that overcommits the environment must be rejected.
	bad := &core.Schedule{Now: env.Now, Tasks: append([]core.Placement(nil), sched.Tasks...)}
	bad.Tasks[0] = core.Placement{Procs: 8, Start: 0, End: model.Hour} // clashes with the background reservation
	if err := Render(&b, g, env, bad, 40); err == nil {
		t.Fatal("overcommitted schedule accepted")
	}
}

func TestRenderRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := daggen.Default()
	spec.N = 15
	g := daggen.MustGenerate(spec, rng)
	env := core.Env{P: 16, Now: 1000, Avail: profile.New(16, 1000)}
	s, err := core.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Turnaround(env, core.BLCPAR, core.BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Render(&b, g, env, sched, 60); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "\n") < 17 {
		t.Fatalf("expected one row per task plus bands:\n%s", b.String())
	}
}
