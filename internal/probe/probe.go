// Package probe implements the practical extension sketched in the
// paper's conclusion: scheduling without full knowledge of the
// reservation schedule. Real batch schedulers often hide the
// reservation table; what they do offer is a probe-style dialogue —
// "when is the earliest you could run m processors for d seconds?" —
// followed by booking one of the offers (the paper's Section 3.2.2
// calls this "a bounded number of trial-and-error reservation requests
// for each application task").
//
// The package defines that narrow BatchSystem interface, a simulated
// implementation backed by an availability profile, and a blind
// scheduler that places a mixed-parallel application through the
// interface using a bounded number of probes per task.
package probe

import (
	"fmt"

	"resched/internal/core"
	"resched/internal/cpa"
	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

// BatchSystem is the reservation dialogue a batch scheduler exposes to
// an application-level scheduler that cannot see the reservation
// table.
type BatchSystem interface {
	// Capacity returns the cluster size.
	Capacity() int
	// Now returns the current time; reservations cannot start earlier.
	Now() model.Time
	// Probe returns the earliest start time at or after notBefore at
	// which procs processors are free for dur seconds. Probing does
	// not reserve anything.
	Probe(procs int, dur model.Duration, notBefore model.Time) (model.Time, error)
	// Book commits a reservation previously discovered by Probe. It
	// fails if the slot is no longer free.
	Book(procs int, start model.Time, dur model.Duration) error
}

// SimulatedBatch is a BatchSystem backed by an availability profile —
// the stand-in for a production batch scheduler in simulations. It
// counts probes so experiments can report the cost of blindness.
type SimulatedBatch struct {
	avail  profile.Intervals
	now    model.Time
	probes int
	books  int
}

// NewSimulatedBatch wraps a clone of the given profile; the caller's
// profile is never modified.
func NewSimulatedBatch(avail profile.Intervals, now model.Time) *SimulatedBatch {
	return &SimulatedBatch{avail: avail.CloneIntervals(), now: now}
}

// Capacity implements BatchSystem.
func (sb *SimulatedBatch) Capacity() int { return sb.avail.Capacity() }

// Now implements BatchSystem.
func (sb *SimulatedBatch) Now() model.Time { return sb.now }

// Probe implements BatchSystem.
func (sb *SimulatedBatch) Probe(procs int, dur model.Duration, notBefore model.Time) (model.Time, error) {
	if procs < 1 || procs > sb.avail.Capacity() {
		return 0, fmt.Errorf("probe: %d processors on a %d-processor cluster", procs, sb.avail.Capacity())
	}
	if notBefore < sb.now {
		notBefore = sb.now
	}
	sb.probes++
	return sb.avail.EarliestFit(procs, dur, notBefore), nil
}

// Book implements BatchSystem.
func (sb *SimulatedBatch) Book(procs int, start model.Time, dur model.Duration) error {
	if start < sb.now {
		return fmt.Errorf("probe: booking in the past (%d < %d)", start, sb.now)
	}
	if dur <= 0 {
		return fmt.Errorf("probe: booking with non-positive duration %d", dur)
	}
	if err := sb.avail.Reserve(start, start+dur, procs); err != nil {
		return err
	}
	sb.books++
	return nil
}

// Probes returns how many probes have been issued.
func (sb *SimulatedBatch) Probes() int { return sb.probes }

// Bookings returns how many reservations have been committed.
func (sb *SimulatedBatch) Bookings() int { return sb.books }

// Options tunes the blind scheduler.
type Options struct {
	// Q is the assumed historical average number of available
	// processors, used for CPA bottom levels and allocation bounds
	// exactly as in the full-knowledge BD_CPAR algorithm. Zero means
	// the full cluster.
	Q int
	// MaxProbesPerTask bounds the reservation dialogue per task. The
	// scheduler probes a geometric ladder of allocation sizes up to
	// this budget. Zero means 8, a realistic request budget.
	MaxProbesPerTask int
}

// DefaultMaxProbes is the per-task probe budget when none is given.
const DefaultMaxProbes = 8

// Result is a blind scheduling outcome.
type Result struct {
	Schedule *core.Schedule
	// Probes is the total number of probe requests issued.
	Probes int
}

// Schedule places the application through the batch system: tasks in
// decreasing BL_CPAR bottom-level order, each booked at the earliest
// completion time among the probed allocation sizes. It is the blind
// counterpart of the paper's BL_CPAR_BD_CPAR heuristic.
func Schedule(g *dag.Graph, bs BatchSystem, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p := bs.Capacity()
	q := opt.Q
	if q <= 0 {
		q = p
	}
	if q > p {
		return nil, fmt.Errorf("probe: q %d exceeds cluster size %d", q, p)
	}
	budget := opt.MaxProbesPerTask
	if budget <= 0 {
		budget = DefaultMaxProbes
	}

	alloc, err := cpa.Allocate(g, q, cpa.StopStringent)
	if err != nil {
		return nil, err
	}
	exec, err := g.ExecTimes(alloc)
	if err != nil {
		return nil, err
	}
	order, err := cpa.PriorityOrder(g, exec)
	if err != nil {
		return nil, err
	}

	now := bs.Now()
	sched := &core.Schedule{Now: now, Tasks: make([]core.Placement, g.NumTasks())}
	probes := 0
	for _, t := range order {
		ready := now
		for _, pr := range g.Predecessors(t) {
			if f := sched.Tasks[pr].End; f > ready {
				ready = f
			}
		}
		task := g.Task(t)
		bestM, bestStart, bestFinish := 0, model.Time(0), model.Infinity
		for _, m := range probeLadder(alloc[t], budget) {
			d := model.ExecTime(task.Seq, task.Alpha, m)
			start, err := bs.Probe(m, d, ready)
			if err != nil {
				return nil, fmt.Errorf("probe: task %d: %w", t, err)
			}
			probes++
			if start+d < bestFinish {
				bestM, bestStart, bestFinish = m, start, start+d
			}
		}
		if bestM == 0 {
			return nil, fmt.Errorf("probe: no allocation candidate for task %d", t)
		}
		d := bestFinish - bestStart
		if d > 0 {
			if err := bs.Book(bestM, bestStart, d); err != nil {
				return nil, fmt.Errorf("probe: booking task %d: %w", t, err)
			}
		}
		sched.Tasks[t] = core.Placement{Procs: bestM, Start: bestStart, End: bestFinish}
	}
	return &Result{Schedule: sched, Probes: probes}, nil
}

// probeLadder picks at most budget allocation sizes in [1, bound]:
// always 1 and the bound itself, with geometric steps in between —
// the spread that loses the least completion time for a fixed number
// of requests under Amdahl's law.
func probeLadder(bound, budget int) []int {
	if bound < 1 {
		return nil
	}
	if budget < 1 {
		budget = 1
	}
	var out []int
	seen := make(map[int]bool)
	add := func(m int) {
		if m >= 1 && m <= bound && !seen[m] {
			out = append(out, m)
			seen[m] = true
		}
	}
	add(1)
	add(bound)
	for step := 2; len(out) < budget && step < 2*bound; step *= 2 {
		add(step)
	}
	// Fill any remaining budget with midpoints.
	for len(out) < budget && len(out) < bound {
		grew := false
		for i := 0; i < len(out)-1 && len(out) < budget; i++ {
			mid := (out[i] + out[i+1]) / 2
			if !seen[mid] && mid > 0 {
				add(mid)
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	// Keep the ladder sorted for deterministic probing.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
