package probe

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

func chainGraph(n int, seq model.Duration, alpha float64) *dag.Graph {
	g := dag.New(n)
	for i := 0; i < n; i++ {
		g.AddTask(dag.Task{Seq: seq, Alpha: alpha})
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i)
	}
	return g
}

func TestSimulatedBatchBasics(t *testing.T) {
	prof := profile.New(8, 0)
	if err := prof.Reserve(100, 200, 8); err != nil {
		t.Fatal(err)
	}
	sb := NewSimulatedBatch(prof, 50)
	if sb.Capacity() != 8 || sb.Now() != 50 {
		t.Fatalf("header: %d procs, now %d", sb.Capacity(), sb.Now())
	}
	start, err := sb.Probe(4, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 200 {
		t.Fatalf("Probe = %d, want 200 (notBefore clamped to now, blocked by reservation)", start)
	}
	if err := sb.Book(4, start, 100); err != nil {
		t.Fatal(err)
	}
	if sb.Probes() != 1 || sb.Bookings() != 1 {
		t.Fatalf("counters: %d probes, %d bookings", sb.Probes(), sb.Bookings())
	}
	// Booking over capacity fails and leaves the system consistent.
	if err := sb.Book(8, 200, 50); err == nil {
		t.Fatal("conflicting booking accepted")
	}
	if err := sb.Book(1, 10, 0); err == nil {
		t.Fatal("zero-duration booking accepted")
	}
	if err := sb.Book(1, 0, 100); err == nil {
		t.Fatal("booking before now accepted")
	}
	if _, err := sb.Probe(99, 10, 0); err == nil {
		t.Fatal("oversized probe accepted")
	}
	// The caller's profile must be untouched.
	if prof.FreeAt(250) != 8 {
		t.Fatal("SimulatedBatch mutated the caller's profile")
	}
}

func TestProbeLadder(t *testing.T) {
	ladder := probeLadder(64, 5)
	if len(ladder) > 5 {
		t.Fatalf("ladder %v exceeds budget", ladder)
	}
	if ladder[0] != 1 || ladder[len(ladder)-1] != 64 {
		t.Fatalf("ladder %v must span [1, bound]", ladder)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			t.Fatalf("ladder %v not strictly increasing", ladder)
		}
	}
	if got := probeLadder(1, 10); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ladder for bound 1 = %v", got)
	}
	if got := probeLadder(0, 4); got != nil {
		t.Fatalf("ladder for bound 0 = %v", got)
	}
	// A generous budget enumerates at most bound sizes.
	if got := probeLadder(4, 100); len(got) > 4 {
		t.Fatalf("ladder %v larger than bound", got)
	}
}

func TestProbeLadderProperty(t *testing.T) {
	f := func(boundRaw, budgetRaw uint8) bool {
		bound := int(boundRaw)%200 + 1
		budget := int(budgetRaw)%16 + 1
		ladder := probeLadder(bound, budget)
		if len(ladder) == 0 {
			return false
		}
		if ladder[0] != 1 || ladder[len(ladder)-1] != bound {
			// bound == 1 collapses both into one entry.
			if !(bound == 1 && len(ladder) == 1) {
				return false
			}
		}
		for i, m := range ladder {
			if m < 1 || m > bound {
				return false
			}
			if i > 0 && m <= ladder[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlindScheduleChain(t *testing.T) {
	g := chainGraph(3, model.Hour, 1) // serial: allocation irrelevant
	prof := profile.New(4, 0)
	sb := NewSimulatedBatch(prof, 0)
	res, err := Schedule(g, sb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Turnaround() != 3*model.Hour {
		t.Fatalf("turnaround = %d, want 3h", res.Schedule.Turnaround())
	}
	if res.Probes == 0 || res.Probes > 3*DefaultMaxProbes {
		t.Fatalf("probes = %d", res.Probes)
	}
}

func TestBlindScheduleMatchesFullKnowledgeClosely(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = rng.Intn(20) + 5
		g := daggen.MustGenerate(spec, rng)
		p := rng.Intn(28) + 4
		prof := profile.New(p, 0)
		for k := 0; k < rng.Intn(10); k++ {
			start := model.Time(rng.Int63n(int64(model.Day)))
			dur := model.Duration(rng.Int63n(int64(4*model.Hour)) + 600)
			procs := rng.Intn(p) + 1
			if prof.MinFree(start, start+dur) >= procs {
				if err := prof.Reserve(start, start+dur, procs); err != nil {
					return false
				}
			}
		}
		q := 1 + rng.Intn(p)

		// Full knowledge baseline.
		s, err := core.NewScheduler(g)
		if err != nil {
			return false
		}
		env := core.Env{P: p, Now: 0, Avail: prof, Q: q}
		full, err := s.Turnaround(env, core.BLCPAR, core.BDCPAR)
		if err != nil {
			return false
		}

		// Blind scheduler with the same q.
		sb := NewSimulatedBatch(prof, 0)
		res, err := Schedule(g, sb, Options{Q: q})
		if err != nil {
			return false
		}
		// The blind schedule must verify against the true environment.
		if err := s.Verify(env, res.Schedule); err != nil {
			return false
		}
		// Blindness costs something, but the probed ladder includes the
		// candidates BD_CPAR cares most about; allow 2x.
		return res.Schedule.Turnaround() <= 2*full.Turnaround()+model.Minute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBlindScheduleOptionsValidation(t *testing.T) {
	g := chainGraph(2, model.Hour, 0)
	sb := NewSimulatedBatch(profile.New(4, 0), 0)
	if _, err := Schedule(g, sb, Options{Q: 99}); err == nil {
		t.Fatal("q > capacity accepted")
	}
	bad := dag.New(2)
	bad.AddTask(dag.Task{Seq: 1})
	bad.AddTask(dag.Task{Seq: 1})
	bad.MustAddEdge(0, 1)
	bad.MustAddEdge(1, 0)
	if _, err := Schedule(bad, sb, Options{}); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestBlindScheduleProbeBudget(t *testing.T) {
	g := chainGraph(5, model.Hour, 0.1)
	sb := NewSimulatedBatch(profile.New(64, 0), 0)
	res, err := Schedule(g, sb, Options{MaxProbesPerTask: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes > 5*3 {
		t.Fatalf("probes = %d, budget was 3 per task", res.Probes)
	}
}
