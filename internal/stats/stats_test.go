package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean of empty should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if !almost(Variance(xs), 32.0/7) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7)) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of singleton should be NaN")
	}
}

func TestCV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CV(xs); !almost(got, 0) {
		t.Fatalf("CV of constant = %v", got)
	}
	if !math.IsNaN(CV([]float64{-1, 1})) {
		t.Fatal("CV with zero mean should be NaN")
	}
	got := CV([]float64{8, 12})
	// mean 10, sd = sqrt(8) -> 28.28%
	if !almost(got, 100*math.Sqrt(8)/10) {
		t.Fatalf("CV = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty Min/Max should be NaN")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Fatalf("perfect correlation: r=%v err=%v", r, err)
	}
	ysNeg := []float64{8, 6, 4, 2}
	r, err = Pearson(xs, ysNeg)
	if err != nil || !almost(r, -1) {
		t.Fatalf("perfect anticorrelation: r=%v err=%v", r, err)
	}
	if _, err := Pearson(xs, ys[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("too-short series accepted")
	}
	if _, err := Pearson([]float64{5, 5}, []float64{1, 2}); err == nil {
		t.Fatal("constant series accepted")
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDegradationFromBest(t *testing.T) {
	degs, err := DegradationFromBest([]float64{10, 15, 20})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 50, 100}
	for i := range want {
		if !almost(degs[i], want[i]) {
			t.Fatalf("degs = %v, want %v", degs, want)
		}
	}
	if _, err := DegradationFromBest(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := DegradationFromBest([]float64{0, 1}); err == nil {
		t.Fatal("zero best accepted")
	}
}

func TestWinners(t *testing.T) {
	ws := Winners([]float64{3, 1, 1, 2}, 1e-12)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Fatalf("Winners = %v", ws)
	}
	if Winners(nil, 0) != nil {
		t.Fatal("Winners(nil) should be nil")
	}
	// Tolerance captures near-ties.
	ws = Winners([]float64{100, 100.0001, 200}, 1e-4)
	if len(ws) != 2 {
		t.Fatalf("Winners with tolerance = %v", ws)
	}
}

// Property: degradations are non-negative and zero exactly for winners.
func TestDegradationWinnersConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*100 + 1
		}
		degs, err := DegradationFromBest(xs)
		if err != nil {
			return false
		}
		winners := map[int]bool{}
		for _, w := range Winners(xs, 1e-12) {
			winners[w] = true
		}
		for i, d := range degs {
			if d < 0 {
				return false
			}
			if (d == 0) != winners[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
