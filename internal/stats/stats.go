// Package stats provides the small set of descriptive statistics the
// experiment harness needs: means, coefficients of variation (Table 3),
// Pearson correlation (the reservation-schedule validation of Section
// 3.2.1), and degradation-from-best aggregation (Tables 4-7).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the sample variance (n-1 denominator), or NaN when
// fewer than two values are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation in percent: 100 * stddev /
// mean. It is NaN when the mean is zero or the sample is too small.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return 100 * StdDev(xs) / m
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient between xs and
// ys. It returns an error when the lengths differ, fewer than two
// points are given, or either series is constant.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: series lengths %d and %d differ", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least two points, have %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: constant series has no correlation")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// DegradationFromBest converts per-algorithm metric values for one
// scenario into percentage degradations relative to the scenario's
// best (lowest) value: 100 * (x - best) / best. All values must be
// positive.
func DegradationFromBest(values []float64) ([]float64, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("stats: no values")
	}
	best := Min(values)
	if best <= 0 {
		return nil, fmt.Errorf("stats: non-positive best value %v", best)
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = 100 * (v - best) / best
	}
	return out, nil
}

// Winners returns the indices achieving the minimum of values within a
// relative tolerance tol (e.g. 1e-9 for exact ties). The paper counts a
// "win" for every algorithm tied for best in a scenario.
func Winners(values []float64, tol float64) []int {
	if len(values) == 0 {
		return nil
	}
	best := Min(values)
	var out []int
	for i, v := range values {
		if v <= best*(1+tol) || v == best {
			out = append(out, i)
		}
	}
	return out
}
