package dag

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"resched/internal/model"
)

// diamond builds the classic 4-task diamond:
//
//	0 -> 1 -> 3
//	0 -> 2 -> 3
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddTask(Task{Seq: model.Duration(100 * (i + 1)), Alpha: 0.1})
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	return g
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	a := g.AddTask(Task{Seq: 10})
	b := g.AddTask(Task{Seq: 10})
	if err := g.AddEdge(a, a); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Fatal("edge to unknown task accepted")
	}
	if err := g.AddEdge(-1, b); err == nil {
		t.Fatal("edge from negative task accepted")
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	// Duplicate edges are idempotent.
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("duplicate edge errored: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after duplicate add, want 1", g.NumEdges())
	}
}

func TestAddTaskValidation(t *testing.T) {
	g := New(1)
	for _, task := range []Task{{Seq: -1}, {Seq: 1, Alpha: -0.1}, {Seq: 1, Alpha: 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddTask(%+v) did not panic", task)
				}
			}()
			g.AddTask(task)
		}()
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, v := range g.Successors(u) {
			if pos[u] >= pos[v] {
				t.Fatalf("topo order violates edge %d -> %d: %v", u, v, order)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddTask(Task{Seq: 10})
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected by TopoOrder")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected by Validate")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New(0).Validate(); err == nil {
		t.Fatal("empty graph validated")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Sources = %v, want [0]", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Sinks = %v, want [3]", got)
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	lvl, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if lvl[i] != want[i] {
			t.Fatalf("Levels = %v, want %v", lvl, want)
		}
	}
	n, err := g.NumLevels()
	if err != nil || n != 3 {
		t.Fatalf("NumLevels = %d, %v; want 3", n, err)
	}
}

func TestBottomLevelsDiamond(t *testing.T) {
	g := diamond(t)
	exec := []model.Duration{10, 20, 30, 40}
	bl, err := g.BottomLevels(exec)
	if err != nil {
		t.Fatal(err)
	}
	// bl(3)=40, bl(1)=20+40=60, bl(2)=30+40=70, bl(0)=10+70=80
	want := []model.Duration{80, 60, 70, 40}
	for i := range want {
		if bl[i] != want[i] {
			t.Fatalf("BottomLevels = %v, want %v", bl, want)
		}
	}
	cp, err := g.CriticalPathLength(exec)
	if err != nil || cp != 80 {
		t.Fatalf("CriticalPathLength = %d, %v; want 80", cp, err)
	}
}

func TestTopLevelsDiamond(t *testing.T) {
	g := diamond(t)
	exec := []model.Duration{10, 20, 30, 40}
	tl, err := g.TopLevels(exec)
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Duration{0, 10, 10, 40}
	for i := range want {
		if tl[i] != want[i] {
			t.Fatalf("TopLevels = %v, want %v", tl, want)
		}
	}
}

func TestBottomLevelsBadLength(t *testing.T) {
	g := diamond(t)
	if _, err := g.BottomLevels([]model.Duration{1}); err == nil {
		t.Fatal("mismatched exec vector accepted")
	}
	if _, err := g.TopLevels(nil); err == nil {
		t.Fatal("nil exec vector accepted by TopLevels")
	}
	if _, err := g.ExecTimes([]int{1, 2}); err == nil {
		t.Fatal("mismatched alloc vector accepted by ExecTimes")
	}
}

func TestExecTimes(t *testing.T) {
	g := New(2)
	g.AddTask(Task{Seq: 100, Alpha: 0})
	g.AddTask(Task{Seq: 100, Alpha: 1})
	exec, err := g.ExecTimes([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if exec[0] != 25 || exec[1] != 100 {
		t.Fatalf("ExecTimes = %v, want [25 100]", exec)
	}
}

func TestUniformAllocAndWork(t *testing.T) {
	g := diamond(t)
	alloc := g.UniformAlloc(3)
	for _, m := range alloc {
		if m != 3 {
			t.Fatalf("UniformAlloc = %v", alloc)
		}
	}
	if got := g.TotalSequentialWork(); got != 100+200+300+400 {
		t.Fatalf("TotalSequentialWork = %d", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.AddTask(Task{Seq: 5})
	c.MustAddEdge(3, 4)
	if g.NumTasks() != 4 || g.NumEdges() != 4 {
		t.Fatalf("mutating clone changed original: %v", g)
	}
	if c.NumTasks() != 5 || c.NumEdges() != 5 {
		t.Fatalf("clone wrong: %v", c)
	}
}

func TestDOTOutput(t *testing.T) {
	g := New(2)
	g.AddTask(Task{Name: "filter", Seq: 60, Alpha: 0.2})
	g.AddTask(Task{Seq: 120})
	g.MustAddEdge(0, 1)
	dot := g.DOT()
	for _, want := range []string{"digraph", "filter", "0 -> 1"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomDAG builds a random DAG where edges only go from lower to
// higher IDs — acyclic by construction.
func randomDAG(rng *rand.Rand, n int, edgeProb float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddTask(Task{Seq: model.Duration(rng.Intn(1000) + 1), Alpha: rng.Float64()})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				g.MustAddEdge(i, j)
			}
		}
	}
	return g
}

// Property: bottom level of a task is at least its own execution time,
// and strictly greater than each successor's bottom level.
func TestBottomLevelInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, rng.Intn(40)+2, 0.2)
		exec := make([]model.Duration, g.NumTasks())
		for i := range exec {
			exec[i] = model.Duration(rng.Intn(100) + 1)
		}
		bl, err := g.BottomLevels(exec)
		if err != nil {
			return false
		}
		for u := 0; u < g.NumTasks(); u++ {
			if bl[u] < exec[u] {
				return false
			}
			for _, v := range g.Successors(u) {
				if bl[u] < bl[v]+exec[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: top level + bottom level of any task never exceeds the
// critical path length, and equality holds for at least one task.
func TestCriticalPathDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, rng.Intn(40)+2, 0.15)
		exec := make([]model.Duration, g.NumTasks())
		for i := range exec {
			exec[i] = model.Duration(rng.Intn(100) + 1)
		}
		bl, _ := g.BottomLevels(exec)
		tl, _ := g.TopLevels(exec)
		cp, _ := g.CriticalPathLength(exec)
		onCP := false
		for i := 0; i < g.NumTasks(); i++ {
			if tl[i]+bl[i] > cp {
				return false
			}
			if tl[i]+bl[i] == cp {
				onCP = true
			}
		}
		return onCP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Levels is consistent with edges (level strictly increases
// along each edge) and TopoOrder sorts by dependency.
func TestLevelsRespectEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, rng.Intn(40)+2, 0.2)
		lvl, err := g.Levels()
		if err != nil {
			return false
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.Successors(u) {
				if lvl[v] <= lvl[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
