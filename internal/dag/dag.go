// Package dag implements the mixed-parallel application model of the
// paper's Section 3.1: a directed acyclic graph whose vertices are
// data-parallel (malleable) tasks and whose edges are precedence
// constraints. Task execution times follow Amdahl's law (package
// model); the graph itself is oblivious to allocations and exposes the
// structural queries the schedulers need — topological order, levels,
// and bottom levels for arbitrary execution-time vectors.
package dag

import (
	"fmt"
	"sort"
	"strings"

	"resched/internal/model"
)

// Task is one data-parallel task of a mixed-parallel application.
type Task struct {
	// Name is an optional human-readable label (used by examples and
	// DOT export); it plays no role in scheduling.
	Name string
	// Seq is the sequential execution time T_i in seconds.
	Seq model.Duration
	// Alpha is the non-parallelizable fraction of the task in [0, 1].
	Alpha float64
}

// Graph is a mixed-parallel application DAG. Tasks are identified by
// dense integer IDs in [0, N). The zero value is an empty graph ready
// for use.
//
// Unlike the paper's exposition, the graph is not required to have a
// single entry and a single exit task: every algorithm in this library
// handles multiple sources and sinks, which the paper notes is "without
// loss of generality".
type Graph struct {
	tasks []Task
	succ  [][]int
	pred  [][]int
	edges int
	// arena backs the adjacency lists: AddEdge grows them by carving
	// capacity out of shared blocks, so building a graph costs a few
	// allocations per block instead of two per edge. The serving path
	// parses a fresh DAG per schedule request, where those per-edge
	// allocations dominated the request's allocation profile.
	arena []int
	// topo caches the computed topological order; any mutation clears
	// it. Validate, Levels, BottomLevels and TopLevels each re-derive
	// the order, so one schedule request would otherwise run Kahn's
	// algorithm roughly ten times over an unchanged graph. The cached
	// slice is only ever replaced, never written in place, which is
	// what lets Clone and TopoOrder hand it out safely.
	topo []int
}

// arenaBlock is the adjacency-arena block size in ints (one block per
// ~512 edge endpoints; doubling growth abandons at most half a list's
// previous capacity inside a block).
const arenaBlock = 512

// carve returns an empty int slice with capacity c backed by the edge
// arena, starting a fresh block when the current one cannot fit c.
// The full-slice expression caps the result so appends beyond c can
// never bleed into a neighbouring list.
func (g *Graph) carve(c int) []int {
	if cap(g.arena)-len(g.arena) < c {
		size := arenaBlock
		if c > size {
			size = c
		}
		g.arena = make([]int, 0, size)
	}
	off := len(g.arena)
	out := g.arena[off : off : off+c]
	g.arena = g.arena[:off+c]
	return out
}

// appendID appends v to adjacency list l, growing through the arena
// with doubling capacity.
func (g *Graph) appendID(l []int, v int) []int {
	if len(l) == cap(l) {
		nc := 2 * cap(l)
		if nc < 4 {
			nc = 4
		}
		nl := g.carve(nc)
		l = append(nl, l...)
	}
	return append(l, v)
}

// New returns an empty graph with capacity for n tasks.
func New(n int) *Graph {
	return &Graph{
		tasks: make([]Task, 0, n),
		succ:  make([][]int, 0, n),
		pred:  make([][]int, 0, n),
	}
}

// AddTask appends a task and returns its ID.
func (g *Graph) AddTask(t Task) int {
	if t.Seq < 0 {
		panic(fmt.Sprintf("dag: negative sequential time %d", t.Seq))
	}
	if t.Alpha < 0 || t.Alpha > 1 {
		panic(fmt.Sprintf("dag: alpha %v outside [0,1]", t.Alpha))
	}
	g.tasks = append(g.tasks, t)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.topo = nil
	return len(g.tasks) - 1
}

// AddEdge adds the precedence constraint from -> to. Duplicate edges
// are ignored. Self-loops are rejected immediately; cycles spanning
// several edges are caught by Validate.
func (g *Graph) AddEdge(from, to int) error {
	if from < 0 || from >= len(g.tasks) || to < 0 || to >= len(g.tasks) {
		return fmt.Errorf("dag: edge (%d -> %d) references unknown task (have %d tasks)", from, to, len(g.tasks))
	}
	if from == to {
		return fmt.Errorf("dag: self-loop on task %d", from)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return nil
		}
	}
	g.succ[from] = g.appendID(g.succ[from], to)
	g.pred[to] = g.appendID(g.pred[to], from)
	g.edges++
	g.topo = nil
	return nil
}

// MustAddEdge is AddEdge that panics on error; it is intended for
// hand-built graphs in tests and examples.
func (g *Graph) MustAddEdge(from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// NumTasks returns the number of tasks V.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of edges E.
func (g *Graph) NumEdges() int { return g.edges }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) Task { return g.tasks[id] }

// Successors returns the direct successors of task id. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Successors(id int) []int { return g.succ[id] }

// Predecessors returns the direct predecessors of task id. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Predecessors(id int) []int { return g.pred[id] }

// Sources returns the tasks with no predecessors, in ID order.
func (g *Graph) Sources() []int {
	var out []int
	for i := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Sinks returns the tasks with no successors, in ID order.
func (g *Graph) Sinks() []int {
	var out []int
	for i := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TopoOrder returns a topological ordering of the tasks, or an error if
// the graph contains a cycle (Kahn's algorithm; ties resolved by task
// ID so the order is deterministic). The result is a fresh slice the
// caller may modify.
func (g *Graph) TopoOrder() ([]int, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	return append([]int(nil), order...), nil
}

// topoOrder computes the topological order once per graph mutation and
// serves it from the cache afterwards. Callers must not modify the
// returned slice.
func (g *Graph) topoOrder() ([]int, error) {
	if g.topo != nil && len(g.topo) == len(g.tasks) {
		return g.topo, nil
	}
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := range g.tasks {
		indeg[i] = len(g.pred[i])
	}
	// Min-ID-first frontier for determinism.
	frontier := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	order := make([]int, 0, n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		next := frontier[0]
		frontier = frontier[1:]
		order = append(order, next)
		for _, s := range g.succ[next] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: graph contains a cycle (%d of %d tasks ordered)", len(order), n)
	}
	g.topo = order
	return order, nil
}

// Validate checks that the graph is a DAG with sane task parameters.
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return fmt.Errorf("dag: empty graph")
	}
	if _, err := g.topoOrder(); err != nil {
		return err
	}
	return nil
}

// Levels assigns each task its precedence level: sources are level 0
// and every other task sits one past its deepest predecessor. This is
// the "level" of the paper's DAG-shape parameters. Returns an error on
// cyclic graphs.
func (g *Graph) Levels() ([]int, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	lvl := make([]int, len(g.tasks))
	for _, t := range order {
		for _, p := range g.pred[t] {
			if lvl[p]+1 > lvl[t] {
				lvl[t] = lvl[p] + 1
			}
		}
	}
	return lvl, nil
}

// NumLevels returns 1 + the maximum level.
func (g *Graph) NumLevels() (int, error) {
	lvl, err := g.Levels()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, l := range lvl {
		if l > max {
			max = l
		}
	}
	return max + 1, nil
}

// BottomLevels computes, for each task, the maximum execution-time sum
// over paths from the task (inclusive) to any sink, given per-task
// execution times exec. This is the standard list-scheduling priority
// used by all of the paper's algorithms (Section 4.2).
func (g *Graph) BottomLevels(exec []model.Duration) ([]model.Duration, error) {
	if len(exec) != len(g.tasks) {
		return nil, fmt.Errorf("dag: exec vector has %d entries for %d tasks", len(exec), len(g.tasks))
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]model.Duration, len(g.tasks))
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		var best model.Duration
		for _, s := range g.succ[t] {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[t] = exec[t] + best
	}
	return bl, nil
}

// TopLevels computes, for each task, the maximum execution-time sum
// over paths from any source to the task (exclusive of the task
// itself): the earliest time the task could start on an unbounded
// machine.
func (g *Graph) TopLevels(exec []model.Duration) ([]model.Duration, error) {
	if len(exec) != len(g.tasks) {
		return nil, fmt.Errorf("dag: exec vector has %d entries for %d tasks", len(exec), len(g.tasks))
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	tl := make([]model.Duration, len(g.tasks))
	for _, t := range order {
		for _, p := range g.pred[t] {
			if v := tl[p] + exec[p]; v > tl[t] {
				tl[t] = v
			}
		}
	}
	return tl, nil
}

// CriticalPathLength returns the length of the longest path through the
// graph under the given execution times: max over tasks of bottom
// level.
func (g *Graph) CriticalPathLength(exec []model.Duration) (model.Duration, error) {
	bl, err := g.BottomLevels(exec)
	if err != nil {
		return 0, err
	}
	var cp model.Duration
	for _, v := range bl {
		if v > cp {
			cp = v
		}
	}
	return cp, nil
}

// ExecTimes evaluates the Amdahl model for every task under the given
// allocation vector (processors per task).
func (g *Graph) ExecTimes(alloc []int) ([]model.Duration, error) {
	if len(alloc) != len(g.tasks) {
		return nil, fmt.Errorf("dag: allocation vector has %d entries for %d tasks", len(alloc), len(g.tasks))
	}
	exec := make([]model.Duration, len(g.tasks))
	for i, t := range g.tasks {
		exec[i] = model.ExecTime(t.Seq, t.Alpha, alloc[i])
	}
	return exec, nil
}

// UniformAlloc returns an allocation vector assigning m processors to
// every task.
func (g *Graph) UniformAlloc(m int) []int {
	alloc := make([]int, len(g.tasks))
	for i := range alloc {
		alloc[i] = m
	}
	return alloc
}

// TotalSequentialWork returns the sum of sequential execution times —
// the application's total work on one processor per task.
func (g *Graph) TotalSequentialWork() model.Duration {
	var sum model.Duration
	for _, t := range g.tasks {
		sum += t.Seq
	}
	return sum
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		tasks: append([]Task(nil), g.tasks...),
		succ:  make([][]int, len(g.succ)),
		pred:  make([][]int, len(g.pred)),
		edges: g.edges,
		// The cached order is replaced, never written in place, so the
		// clone can share it until either graph mutates.
		topo: g.topo,
	}
	for i := range g.succ {
		c.succ[i] = append([]int(nil), g.succ[i]...)
		c.pred[i] = append([]int(nil), g.pred[i]...)
	}
	return c
}

// DOT renders the graph in Graphviz format, one node per task labeled
// with name (or ID), sequential time, and alpha.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph app {\n  rankdir=TB;\n")
	for i, t := range g.tasks {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		fmt.Fprintf(&b, "  %d [label=\"%s\\nT=%ds a=%.2f\"];\n", i, name, t.Seq, t.Alpha)
	}
	for i := range g.tasks {
		for _, s := range g.succ[i] {
			fmt.Fprintf(&b, "  %d -> %d;\n", i, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("dag{tasks: %d, edges: %d}", len(g.tasks), g.edges)
}
