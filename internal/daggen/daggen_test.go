package daggen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/model"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.N = 0 },
		func(s *Spec) { s.Alpha = -0.1 },
		func(s *Spec) { s.Alpha = 1.1 },
		func(s *Spec) { s.Width = 0 },
		func(s *Spec) { s.Width = 1.2 },
		func(s *Spec) { s.Regularity = -0.5 },
		func(s *Spec) { s.Density = 0 },
		func(s *Spec) { s.Jump = 0 },
		func(s *Spec) { s.MinSeq = 0 },
		func(s *Spec) { s.MaxSeq = 10; s.MinSeq = 20 },
	}
	for i, mutate := range bad {
		s := Default()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d validated: %+v", i, s)
		}
		if _, err := Generate(s, rand.New(rand.NewSource(1))); err == nil {
			t.Fatalf("bad spec %d generated: %+v", i, s)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := Generate(Default(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 50 {
		t.Fatalf("NumTasks = %d, want 50", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(i)
		if task.Seq < model.Minute || task.Seq > 10*model.Hour {
			t.Fatalf("task %d seq %d outside [1min,10h]", i, task.Seq)
		}
		if task.Alpha < 0 || task.Alpha > 0.20 {
			t.Fatalf("task %d alpha %v outside [0,0.20]", i, task.Alpha)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Default(), rand.New(rand.NewSource(7)))
	b := MustGenerate(Default(), rand.New(rand.NewSource(7)))
	if a.NumTasks() != b.NumTasks() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different graphs: %v vs %v", a, b)
	}
	for i := 0; i < a.NumTasks(); i++ {
		if a.Task(i) != b.Task(i) {
			t.Fatalf("task %d differs", i)
		}
	}
}

func TestWidthControlsParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := Default()
	spec.N = 64

	spec.Width = 0.1
	thin := MustGenerate(spec, rng)
	thinLevels, _ := thin.NumLevels()

	spec.Width = 0.9
	fat := MustGenerate(spec, rng)
	fatLevels, _ := fat.NumLevels()

	if thinLevels <= fatLevels {
		t.Fatalf("width 0.1 gave %d levels, width 0.9 gave %d; want chain >> fork-join", thinLevels, fatLevels)
	}
	if fatLevels > 6 {
		t.Fatalf("width 0.9 gave %d levels, want a flat fork-join-like graph", fatLevels)
	}
}

func TestDensityControlsEdgeCount(t *testing.T) {
	spec := Default()
	var sparse, dense int
	for seed := int64(0); seed < 10; seed++ {
		spec.Density = 0.1
		sparse += MustGenerate(spec, rand.New(rand.NewSource(seed))).NumEdges()
		spec.Density = 0.9
		dense += MustGenerate(spec, rand.New(rand.NewSource(seed))).NumEdges()
	}
	if dense <= sparse {
		t.Fatalf("density 0.9 produced %d edges vs %d at 0.1", dense, sparse)
	}
}

func TestJumpOneIsLayered(t *testing.T) {
	spec := Default()
	spec.Jump = 1
	for seed := int64(0); seed < 20; seed++ {
		g := MustGenerate(spec, rand.New(rand.NewSource(seed)))
		lvl, err := g.Levels()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.Successors(u) {
				if lvl[v] != lvl[u]+1 {
					t.Fatalf("seed %d: edge %d->%d spans levels %d->%d in a jump=1 DAG", seed, u, v, lvl[u], lvl[v])
				}
			}
		}
	}
}

func TestJumpEdgesStayWithinBound(t *testing.T) {
	spec := Default()
	spec.Jump = 3
	found := false
	for seed := int64(0); seed < 30; seed++ {
		g := MustGenerate(spec, rand.New(rand.NewSource(seed)))
		// Generation levels equal structural levels only for jump=1;
		// here we check against the generation levels implied by task
		// creation order: recompute via longest paths is not valid, so
		// verify no edge spans more than Jump generation levels using
		// the fact that IDs are assigned level by level. Instead we
		// simply verify acyclicity plus the existence of some non-layered
		// edge across seeds.
		lvl, err := g.Levels()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, v := range g.Successors(u) {
				if lvl[v] > lvl[u]+1 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("jump=3 never produced a level-skipping edge over 30 seeds")
	}
}

func TestRegularityControlsLevelVariance(t *testing.T) {
	// With regularity 1 every level (except the trimmed last) has the
	// same size.
	spec := Default()
	spec.Regularity = 1
	spec.N = 60
	rng := rand.New(rand.NewSource(11))
	levels := drawLevels(spec, rng)
	want := int(math.Round(math.Pow(60, 0.5)))
	for i, sz := range levels[:len(levels)-1] {
		if sz != want {
			t.Fatalf("regularity=1 level %d has %d tasks, want %d", i, sz, want)
		}
	}
}

func TestDrawLevelsExactTotal(t *testing.T) {
	f := func(seed int64, nRaw uint8, wRaw, rRaw uint8) bool {
		spec := Default()
		spec.N = int(nRaw)%100 + 1
		spec.Width = float64(wRaw%9+1) / 10
		spec.Regularity = float64(rRaw%10) / 10
		rng := rand.New(rand.NewSource(seed))
		levels := drawLevels(spec, rng)
		total := 0
		for _, sz := range levels {
			if sz < 1 {
				return false
			}
			total += sz
		}
		return total == spec.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated DAG across the whole Table 1 grid is valid
// and has the requested task count.
func TestParamGridGeneration(t *testing.T) {
	grid := ParamGrid()
	if len(grid) != 40 {
		t.Fatalf("ParamGrid has %d specs, want 40", len(grid))
	}
	rng := rand.New(rand.NewSource(99))
	for _, spec := range grid {
		if err := spec.Validate(); err != nil {
			t.Fatalf("grid spec %v invalid: %v", spec, err)
		}
		g, err := Generate(spec, rng)
		if err != nil {
			t.Fatalf("grid spec %v: %v", spec, err)
		}
		if g.NumTasks() != spec.N {
			t.Fatalf("grid spec %v: got %d tasks", spec, g.NumTasks())
		}
	}
}

// Property: every non-source task has a predecessor in the previous
// structural level or earlier (connectivity guarantee).
func TestEveryTaskReachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := Default()
		spec.N = rng.Intn(80) + 2
		spec.Jump = rng.Intn(4) + 1
		g := MustGenerate(spec, rng)
		lvl, err := g.Levels()
		if err != nil {
			return false
		}
		for i := 0; i < g.NumTasks(); i++ {
			if lvl[i] > 0 && len(g.Predecessors(i)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
