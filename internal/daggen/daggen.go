// Package daggen generates synthetic mixed-parallel application DAGs
// following the model of the paper's Section 3.1 and Table 1: the DAG
// shape is controlled by the number of tasks and by four parameters —
// width, regularity, density, and jump — and each task's execution
// behavior by a sequential time drawn between 1 minute and 10 hours
// and an Amdahl serial fraction drawn in [0, alpha].
//
// The original DAG generation program by Suter [14] is not available
// offline; this package reimplements its parameterization as described
// in the paper:
//
//   - width sets the maximum parallelism. The mean number of tasks per
//     level is n^width: width -> 0 yields chain graphs (one task per
//     level), width -> 1 yields fork-join graphs (a handful of levels
//     holding nearly all tasks).
//   - regularity sets how uniform level populations are. Each level's
//     size is drawn uniformly in mean*(1 ± (1-regularity)).
//   - density sets the probability of an edge between a task and each
//     task of the previous level. Every non-first-level task keeps at
//     least one predecessor in the previous level so levels are exact.
//   - jump adds random edges from level l to level l+j for j in
//     [2, jump]; jump = 1 produces a layered DAG.
package daggen

import (
	"fmt"
	"math"
	"math/rand"

	"resched/internal/dag"
	"resched/internal/model"
)

// Spec describes one application configuration (a row of Table 1).
type Spec struct {
	N          int     // number of tasks
	Alpha      float64 // upper bound on each task's serial fraction
	Width      float64 // (0,1]: mean tasks per level = N^Width
	Regularity float64 // [0,1]: uniformity of level sizes
	Density    float64 // (0,1]: inter-level edge probability
	Jump       int     // >=1: maximum level distance of extra edges
	MinSeq     model.Duration
	MaxSeq     model.Duration
}

// Default is the boldface configuration of Table 1: 50 tasks,
// alpha = 0.20, width/density/regularity = 0.5, layered (jump = 1),
// sequential times between 1 minute and 10 hours.
func Default() Spec {
	return Spec{
		N:          50,
		Alpha:      0.20,
		Width:      0.5,
		Regularity: 0.5,
		Density:    0.5,
		Jump:       1,
		MinSeq:     model.Minute,
		MaxSeq:     10 * model.Hour,
	}
}

// Validate reports whether the spec's parameters are in range.
func (s Spec) Validate() error {
	switch {
	case s.N < 1:
		return fmt.Errorf("daggen: N %d < 1", s.N)
	case s.Alpha < 0 || s.Alpha > 1:
		return fmt.Errorf("daggen: alpha %v outside [0,1]", s.Alpha)
	case s.Width <= 0 || s.Width > 1:
		return fmt.Errorf("daggen: width %v outside (0,1]", s.Width)
	case s.Regularity < 0 || s.Regularity > 1:
		return fmt.Errorf("daggen: regularity %v outside [0,1]", s.Regularity)
	case s.Density <= 0 || s.Density > 1:
		return fmt.Errorf("daggen: density %v outside (0,1]", s.Density)
	case s.Jump < 1:
		return fmt.Errorf("daggen: jump %d < 1", s.Jump)
	case s.MinSeq < 1 || s.MaxSeq < s.MinSeq:
		return fmt.Errorf("daggen: sequential time range [%d,%d] invalid", s.MinSeq, s.MaxSeq)
	}
	return nil
}

// String renders the spec compactly, e.g. for experiment labels.
func (s Spec) String() string {
	return fmt.Sprintf("n=%d a=%.2f w=%.1f d=%.1f r=%.1f j=%d",
		s.N, s.Alpha, s.Width, s.Density, s.Regularity, s.Jump)
}

// Generate builds a random application DAG from the spec using the
// given random source. The result always validates: it is acyclic,
// has exactly spec.N tasks, and every non-source task has at least one
// predecessor in the level immediately above it.
func Generate(spec Spec, rng *rand.Rand) (*dag.Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	levels := drawLevels(spec, rng)
	g := dag.New(spec.N)
	// Tasks are created level by level; IDs are dense and level-ordered.
	byLevel := make([][]int, len(levels))
	for l, size := range levels {
		byLevel[l] = make([]int, 0, size)
		for k := 0; k < size; k++ {
			seq := spec.MinSeq + model.Duration(rng.Int63n(int64(spec.MaxSeq-spec.MinSeq+1)))
			id := g.AddTask(dag.Task{
				Seq:   seq,
				Alpha: rng.Float64() * spec.Alpha,
			})
			byLevel[l] = append(byLevel[l], id)
		}
	}
	// Primary (layered) edges, controlled by density.
	for l := 1; l < len(byLevel); l++ {
		prev := byLevel[l-1]
		for _, v := range byLevel[l] {
			connected := false
			for _, u := range prev {
				if rng.Float64() < spec.Density {
					g.MustAddEdge(u, v)
					connected = true
				}
			}
			if !connected {
				g.MustAddEdge(prev[rng.Intn(len(prev))], v)
			}
		}
	}
	// Jump edges from level l to level l+j, j in [2, jump]. The paper
	// only asks for "random jump edges"; we add each candidate pair
	// with a probability that decays with the jump distance so longer
	// jumps stay rare, scaled by density like the primary edges.
	for j := 2; j <= spec.Jump; j++ {
		pj := spec.Density / float64(2*j)
		for l := 0; l+j < len(byLevel); l++ {
			for _, u := range byLevel[l] {
				for _, v := range byLevel[l+j] {
					if rng.Float64() < pj {
						g.MustAddEdge(u, v)
					}
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("daggen: generated invalid graph: %w", err)
	}
	return g, nil
}

// MustGenerate is Generate that panics on error; specs validated ahead
// of time (e.g. the Table 1 grid) cannot fail.
func MustGenerate(spec Spec, rng *rand.Rand) *dag.Graph {
	g, err := Generate(spec, rng)
	if err != nil {
		panic(err)
	}
	return g
}

// drawLevels draws level sizes until spec.N tasks are placed. The mean
// level size is N^Width; regularity shrinks the uniform jitter around
// the mean.
func drawLevels(spec Spec, rng *rand.Rand) []int {
	mean := math.Pow(float64(spec.N), spec.Width)
	if mean < 1 {
		mean = 1
	}
	if mean > float64(spec.N) {
		mean = float64(spec.N)
	}
	jitter := 1 - spec.Regularity
	var levels []int
	remaining := spec.N
	for remaining > 0 {
		f := mean * (1 + jitter*(2*rng.Float64()-1))
		size := int(math.Round(f))
		if size < 1 {
			size = 1
		}
		if size > remaining {
			size = remaining
		}
		levels = append(levels, size)
		remaining -= size
	}
	return levels
}

// ParamGrid returns the 40 application specifications used by the
// paper's experiments (Section 4.3.1): for each of the six parameters
// of Table 1, all its values are swept while the other five stay at
// their defaults. Default-valued rows appear only once per swept
// parameter, giving 5+4+9+9+9+4 = 40 specs.
func ParamGrid() []Spec {
	d := Default()
	var grid []Spec
	for _, n := range []int{10, 25, 50, 75, 100} {
		s := d
		s.N = n
		grid = append(grid, s)
	}
	for _, a := range []float64{0.05, 0.10, 0.15, 0.20} {
		s := d
		s.Alpha = a
		grid = append(grid, s)
	}
	nine := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	for _, w := range nine {
		s := d
		s.Width = w
		grid = append(grid, s)
	}
	for _, de := range nine {
		s := d
		s.Density = de
		grid = append(grid, s)
	}
	for _, r := range nine {
		s := d
		s.Regularity = r
		grid = append(grid, s)
	}
	for _, j := range []int{1, 2, 3, 4} {
		s := d
		s.Jump = j
		grid = append(grid, s)
	}
	return grid
}
