// Package tables renders the experiment results as fixed-width ASCII
// tables shaped like the paper's Tables 3-10.
package tables

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row. Rows shorter than the header are padded with
// empty cells; longer rows keep their extra cells (and widen the
// table).
func (t *Table) Add(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered
// with %v for strings and integers and %.2f for floats.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Add(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2) + "\n")
	}
	for _, r := range t.rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
