package tables

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tb := New("Table X: demo", "Algorithm", "Deg [%]", "Wins")
	tb.Addf("BD_CPAR", 0.21, 386)
	tb.Addf("BD_ALL", 33.75, 36)
	out := tb.String()
	for _, want := range []string{"Table X: demo", "Algorithm", "BD_CPAR", "0.21", "386", "33.75"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	// Header separator present.
	if !strings.Contains(out, "---") {
		t.Fatalf("no separator:\n%s", out)
	}
}

func TestRenderAlignsColumns(t *testing.T) {
	tb := New("", "A", "B")
	tb.Add("x", "1")
	tb.Add("longer", "22")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// All data lines must have equal rendered width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned rows:\n%s", tb.String())
	}
}

func TestShortAndLongRows(t *testing.T) {
	tb := New("t", "A", "B")
	tb.Add("only")
	tb.Add("a", "b", "c")
	out := tb.String()
	if !strings.Contains(out, "only") || !strings.Contains(out, "c") {
		t.Fatalf("rows lost:\n%s", out)
	}
}

func TestAddfFormats(t *testing.T) {
	tb := New("", "v")
	tb.Addf(3.14159)
	tb.Addf(float32(2.5))
	tb.Addf(42)
	tb.Addf("str")
	out := tb.String()
	for _, want := range []string{"3.14", "2.50", "42", "str"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
