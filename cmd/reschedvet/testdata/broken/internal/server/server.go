// Package server is an e2e fixture whose import cannot resolve:
// reschedvet must fail the load and exit 2 rather than report a
// partial (and therefore misleading) clean run.
package server

import "resched/internal/doesnotexist"

var _ = doesnotexist.Missing
