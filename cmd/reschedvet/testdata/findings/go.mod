module resched

go 1.22
