// Package server is an e2e fixture: a serving package with one
// dropped error, which reschedvet must report with exit code 1.
package server

import "errors"

func persist() error { return errors.New("disk full") }

func flush() {
	_ = persist()
}
