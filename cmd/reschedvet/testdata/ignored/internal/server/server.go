// Package server is an e2e fixture: the same dropped error as the
// findings fixture, but suppressed with a directive, so reschedvet
// must exit 0.
package server

import "errors"

func persist() error { return errors.New("disk full") }

func flush() {
	_ = persist() //reschedvet:ignore errdrop best-effort flush, failure handled by the next cycle
}
