package main

// SARIF-lite output: the subset of SARIF 2.1.0 that CI annotators and
// editors consume — one run, the analyzer set as the tool's rules, and
// one result per finding with a single physical location. Nothing here
// depends on the SARIF schema beyond field names; the e2e test pins
// the shape.

import (
	"encoding/json"
	"io"
	"path/filepath"

	"resched/internal/analysis"
)

type sarifLog struct {
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the diagnostics as one SARIF run. URIs are
// cwd-relative with forward slashes where possible, matching the
// plain-text output's paths. Results keep RunAnalyzersFacts's
// deterministic order.
func writeSARIF(w io.Writer, cwd string, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}}
	}
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		results[i] = sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(cwd, d.Pos.Filename))},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
	}
	log := sarifLog{
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "reschedvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath relativizes a diagnostic path against cwd when the result
// stays inside it.
func relPath(cwd, name string) string {
	if cwd == "" {
		return name
	}
	if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return name
}
