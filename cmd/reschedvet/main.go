// Command reschedvet is the repo's domain-aware multichecker: it runs
// the internal/analysis analyzers — refguard, poolescape,
// checkedentry, ctxflow, modeexhaustive — over the given packages
// (default ./...) and exits non-zero if any finding survives. Each
// finding prints as
//
//	path/to/file.go:line:col: message (analyzer)
//
// `make lint` runs it as part of `make ci`. Suppress a finding with a
// //reschedvet:ignore comment; see internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"resched/internal/analysis"
	"resched/internal/analysis/checkedentry"
	"resched/internal/analysis/ctxflow"
	"resched/internal/analysis/modeexhaustive"
	"resched/internal/analysis/poolescape"
	"resched/internal/analysis/refguard"
)

var analyzers = []*analysis.Analyzer{
	checkedentry.Analyzer,
	ctxflow.Analyzer,
	modeexhaustive.Analyzer,
	poolescape.Analyzer,
	refguard.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reschedvet [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the resched domain analyzers over the packages (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reschedvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reschedvet:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reschedvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
