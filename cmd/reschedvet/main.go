// Command reschedvet is the repo's domain-aware multichecker: it runs
// the internal/analysis analyzers — refguard, poolescape,
// checkedentry, ctxflow, modeexhaustive, the flow-aware quartet
// snapshotmut, lockhold, errdrop, wgleak, the field-level trio
// guardedby, atomicmix, hotpath, plus the whole-module pair lockcycle
// and chanflow — over the given packages (default ./...) and exits
// non-zero if any finding survives. Each finding prints as
//
//	path/to/file.go:line:col: message (analyzer)
//
// or, with -json, as a SARIF-lite document on stdout.
//
// Exit codes: 0 clean, 1 findings, 2 the packages could not be loaded
// or analysis itself failed. `make lint` runs it as part of `make ci`.
// Suppress a finding with a //reschedvet:ignore comment; see
// internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"resched/internal/analysis"
	"resched/internal/analysis/atomicmix"
	"resched/internal/analysis/chanflow"
	"resched/internal/analysis/checkedentry"
	"resched/internal/analysis/ctxflow"
	"resched/internal/analysis/errdrop"
	"resched/internal/analysis/guardedby"
	"resched/internal/analysis/hotpath"
	"resched/internal/analysis/lockcycle"
	"resched/internal/analysis/lockhold"
	"resched/internal/analysis/modeexhaustive"
	"resched/internal/analysis/poolescape"
	"resched/internal/analysis/refguard"
	"resched/internal/analysis/snapshotmut"
	"resched/internal/analysis/wgleak"
)

var analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	chanflow.Analyzer,
	checkedentry.Analyzer,
	ctxflow.Analyzer,
	errdrop.Analyzer,
	guardedby.Analyzer,
	hotpath.Analyzer,
	lockcycle.Analyzer,
	lockhold.Analyzer,
	modeexhaustive.Analyzer,
	poolescape.Analyzer,
	refguard.Analyzer,
	snapshotmut.Analyzer,
	wgleak.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	facts := flag.Bool("facts", false, "also print each analyzer's exported facts, JSON-encoded per package")
	jsonOut := flag.Bool("json", false, "emit findings as a SARIF-lite JSON document instead of plain text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reschedvet [-list] [-facts] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the resched domain analyzers over the packages (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reschedvet:", err)
		os.Exit(2)
	}
	diags, allFacts, err := analysis.RunAnalyzersFacts(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reschedvet:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	if *jsonOut {
		if err := writeSARIF(os.Stdout, cwd, diags); err != nil {
			fmt.Fprintln(os.Stderr, "reschedvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s (%s)\n", relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if *facts && !*jsonOut {
		printFacts(allFacts)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reschedvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// printFacts dumps the per-analyzer fact sets in a stable order, one
// line per analyzer: `facts[name]: {...json...}`. Empty sets are
// skipped so a clean run with no flow facts prints nothing extra.
func printFacts(allFacts map[string]*analysis.FactSet) {
	names := make([]string, 0, len(allFacts))
	for name := range allFacts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fs := allFacts[name]
		if fs == nil || len(fs.All()) == 0 {
			continue
		}
		data, err := fs.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reschedvet: encoding %s facts: %v\n", name, err)
			os.Exit(2)
		}
		fmt.Printf("facts[%s]: %s\n", name, data)
	}
}
