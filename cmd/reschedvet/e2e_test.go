package main

// End-to-end tests for the reschedvet binary: build it once, then run
// it from inside tiny fixture modules under testdata/ (each its own
// `module resched`, so the serving-package paths match the real
// tree's) and assert on output and exit codes:
//
//	0 — clean (directive-suppressed finding)
//	1 — findings survive
//	2 — the packages could not be loaded at all
//
// Exercising the process boundary is the point; the analyzers
// themselves are unit-tested in their own packages.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var buildOnce struct {
	sync.Once
	bin string
	err error
}

// vetBinary builds the reschedvet binary once per test run.
func vetBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "reschedvet-e2e")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "reschedvet")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			buildOnce.err = err
			os.RemoveAll(dir)
			return
		}
		_ = out
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("building reschedvet: %v", buildOnce.err)
	}
	return buildOnce.bin
}

// runVet executes the built binary with its working directory inside
// the named fixture module, returning combined output and exit code.
func runVet(t *testing.T, fixture string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(vetBinary(t), args...)
	cmd.Dir = filepath.Join("testdata", fixture)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running reschedvet in %s: %v\n%s", fixture, err, out)
	}
	return string(out), ee.ExitCode()
}

func TestE2EFindingsExitOne(t *testing.T) {
	out, code := runVet(t, "findings")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "(errdrop)") {
		t.Errorf("output does not name the errdrop finding:\n%s", out)
	}
	if !strings.Contains(out, "internal/server/server.go:") {
		t.Errorf("output does not point at the offending file:\n%s", out)
	}
}

func TestE2EIgnoreDirectiveSuppresses(t *testing.T) {
	out, code := runVet(t, "ignored")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (directive should suppress)\n%s", code, out)
	}
	if strings.Contains(out, "errdrop") {
		t.Errorf("suppressed finding still reported:\n%s", out)
	}
}

func TestE2EBrokenImportExitTwo(t *testing.T) {
	out, code := runVet(t, "broken")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (load failure)\n%s", code, out)
	}
	if !strings.Contains(out, "reschedvet:") {
		t.Errorf("load failure not reported on stderr:\n%s", out)
	}
}

func TestE2ENoPackagesMatchedExitTwo(t *testing.T) {
	out, code := runVet(t, "findings", "./nosuchdir/...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (no packages matched)\n%s", code, out)
	}
}

func TestE2EListExitsClean(t *testing.T) {
	out, code := runVet(t, "findings", "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	for _, name := range []string{"snapshotmut", "lockhold", "errdrop", "wgleak", "guardedby", "atomicmix", "hotpath"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestE2EFactsDump(t *testing.T) {
	out, code := runVet(t, "ignored", "-facts")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	// persist() carries no flow facts, but the fixture must at least
	// not crash the encoder; a fact line, if any, is JSON per package.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line != "" && !strings.HasPrefix(line, "facts[") {
			t.Errorf("unexpected non-fact output line: %q", line)
		}
	}
}
