package main

// End-to-end tests for the reschedvet binary: build it once, then run
// it from inside tiny fixture modules under testdata/ (each its own
// `module resched`, so the serving-package paths match the real
// tree's) and assert on output and exit codes:
//
//	0 — clean (directive-suppressed finding)
//	1 — findings survive
//	2 — the packages could not be loaded at all
//
// Exercising the process boundary is the point; the analyzers
// themselves are unit-tested in their own packages.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var buildOnce struct {
	sync.Once
	bin string
	err error
}

// vetBinary builds the reschedvet binary once per test run.
func vetBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "reschedvet-e2e")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "reschedvet")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			buildOnce.err = err
			os.RemoveAll(dir)
			return
		}
		_ = out
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("building reschedvet: %v", buildOnce.err)
	}
	return buildOnce.bin
}

// runVet executes the built binary with its working directory inside
// the named fixture module, returning combined output and exit code.
func runVet(t *testing.T, fixture string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(vetBinary(t), args...)
	cmd.Dir = filepath.Join("testdata", fixture)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running reschedvet in %s: %v\n%s", fixture, err, out)
	}
	return string(out), ee.ExitCode()
}

func TestE2EFindingsExitOne(t *testing.T) {
	out, code := runVet(t, "findings")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "(errdrop)") {
		t.Errorf("output does not name the errdrop finding:\n%s", out)
	}
	if !strings.Contains(out, "internal/server/server.go:") {
		t.Errorf("output does not point at the offending file:\n%s", out)
	}
}

func TestE2EIgnoreDirectiveSuppresses(t *testing.T) {
	out, code := runVet(t, "ignored")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (directive should suppress)\n%s", code, out)
	}
	if strings.Contains(out, "errdrop") {
		t.Errorf("suppressed finding still reported:\n%s", out)
	}
}

func TestE2EBrokenImportExitTwo(t *testing.T) {
	out, code := runVet(t, "broken")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (load failure)\n%s", code, out)
	}
	if !strings.Contains(out, "reschedvet:") {
		t.Errorf("load failure not reported on stderr:\n%s", out)
	}
}

func TestE2ENoPackagesMatchedExitTwo(t *testing.T) {
	out, code := runVet(t, "findings", "./nosuchdir/...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (no packages matched)\n%s", code, out)
	}
}

func TestE2EListExitsClean(t *testing.T) {
	out, code := runVet(t, "findings", "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	for _, name := range []string{"snapshotmut", "lockhold", "errdrop", "wgleak", "guardedby", "atomicmix", "hotpath", "lockcycle", "chanflow"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

// runVetStdout is runVet with stdout and stderr separated, for output
// that must parse as a single document.
func runVetStdout(t *testing.T, fixture string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(vetBinary(t), args...)
	cmd.Dir = filepath.Join("testdata", fixture)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err == nil {
		return stdout.String(), stderr.String(), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running reschedvet in %s: %v\n%s%s", fixture, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String(), ee.ExitCode()
}

// sarifDoc mirrors the SARIF-lite shape the -json flag promises;
// unknown fields in the real output are fine, missing ones are not.
type sarifDoc struct {
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID  string `json:"ruleId"`
			Level   string `json:"level"`
			Message struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestE2EJSONFindings(t *testing.T) {
	stdout, _, code := runVetStdout(t, "findings", "-json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, stdout)
	}
	var doc sarifDoc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "reschedvet" {
		t.Errorf("driver name = %q, want reschedvet", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no short description", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"errdrop", "lockcycle", "chanflow", "guardedby"} {
		if !ruleIDs[want] {
			t.Errorf("rules missing %s", want)
		}
	}
	if len(run.Results) == 0 {
		t.Fatal("findings fixture produced no results")
	}
	for i, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result %d ruleId %q not among declared rules", i, res.RuleID)
		}
		if res.Level != "warning" {
			t.Errorf("result %d level = %q, want warning", i, res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("result %d has an empty message", i)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("result %d URI = %q, want non-empty forward-slash path", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 || loc.Region.StartColumn <= 0 {
			t.Errorf("result %d region = %+v, want positive line and column", i, loc.Region)
		}
	}
}

func TestE2EJSONCleanHasEmptyResults(t *testing.T) {
	stdout, _, code := runVetStdout(t, "ignored", "-json")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, stdout)
	}
	var doc sarifDoc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) != 0 {
		t.Errorf("clean run should have one run with zero results:\n%s", stdout)
	}
	// The document must literally carry an empty results array, not
	// omit or null it — downstream SARIF consumers require the key.
	if !strings.Contains(stdout, `"results": []`) {
		t.Errorf("results array not rendered as []:\n%s", stdout)
	}
}

func TestE2EFactsDump(t *testing.T) {
	out, code := runVet(t, "ignored", "-facts")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	// persist() carries no flow facts, but the fixture must at least
	// not crash the encoder; a fact line, if any, is JSON per package.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line != "" && !strings.HasPrefix(line, "facts[") {
			t.Errorf("unexpected non-fact output line: %q", line)
		}
	}
}
