// Command resreplay replays a workload trace through the online
// lifecycle engine (internal/lifecycle) in simulated time and reports
// the online scheduling metrics: makespan, utilization, mean and max
// wait, and bounded slowdown, plus how often the engine backfilled
// and how many starvation-triggered advance reservations it booked.
//
// The trace comes from a synthetic archetype (-arch, -days, -seed;
// see internal/workload) or from a Standard Workload Format file
// (-swf). Jobs are rigid: the engine schedules each job's processor
// count for its recorded runtime; recorded waits in the input are
// ignored — producing new waits is the point of the replay.
//
// Examples:
//
//	resreplay -arch CTC_SP2 -days 2 -seed 7
//	resreplay -arch SDSC_BLUE -days 1 -backfill=false
//	resreplay -swf trace.swf -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"resched/internal/lifecycle"
	"resched/internal/model"
	"resched/internal/resbook"
	"resched/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "resreplay: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	arch := flag.String("arch", "CTC_SP2", "synthetic workload archetype (CTC_SP2, OSC_Cluster, SDSC_BLUE, SDSC_DS)")
	days := flag.Int("days", 1, "synthetic trace length in days")
	seed := flag.Int64("seed", 1, "synthetic trace random seed")
	swf := flag.String("swf", "", "replay this SWF file instead of a synthetic trace")
	procs := flag.Int("procs", 0, "override the cluster capacity (default: the trace's)")
	shards := flag.Int("shards", 8, "time-epoch shards in the reservation book")
	backfill := flag.Bool("backfill", true, "backfill queued jobs under the activation guardrail")
	starveAttempts := flag.Int("starve-attempts", 8, "failed placement passes before a starvation reservation, <=0 disables")
	starveAge := flag.Int64("starve-age", int64(15*model.Minute), "queue age in seconds before a starvation reservation, <=0 disables")
	timeout := flag.Duration("timeout", 5*time.Minute, "abort the replay after this much wall time")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	lg, err := loadTrace(*swf, *arch, *days, *seed)
	if err != nil {
		return err
	}
	capacity := lg.Procs
	if *procs > 0 {
		capacity = *procs
	}
	trace := make([]lifecycle.Arrival, 0, len(lg.Jobs))
	for _, j := range lg.Jobs {
		p := j.Procs
		if p > capacity {
			p = capacity // wide jobs clamp when -procs shrinks the machine
		}
		trace = append(trace, lifecycle.Arrival{At: j.Submit, Procs: p, Dur: j.Run})
	}

	first, _ := lg.Span()
	book, err := resbook.NewSharded(capacity, first, *shards, model.Day)
	if err != nil {
		return err
	}
	sa := *starveAttempts
	if sa <= 0 {
		sa = -1
	}
	sg := model.Duration(*starveAge)
	if sg <= 0 {
		sg = -1
	}
	eng, err := lifecycle.New(lifecycle.Config{
		Book:           book,
		Backfill:       *backfill,
		StarveAttempts: sa,
		StarveAge:      sg,
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	rep, err := eng.Replay(ctx, trace)
	if err != nil {
		return err
	}
	if err := book.CheckInvariants(); err != nil {
		return fmt.Errorf("post-replay book invariants: %w", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("trace: %s (%d jobs, %d processors)\n", lg.Name, len(trace), capacity)
	fmt.Printf("replay: %s in %.2fs wall\n", rep, time.Since(start).Seconds())
	return nil
}

// loadTrace reads the SWF file or synthesizes the archetype.
func loadTrace(swf, arch string, days int, seed int64) (*workload.Log, error) {
	if swf != "" {
		f, err := os.Open(swf)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ParseSWF(f, swf)
	}
	a, err := workload.ByName(arch)
	if err != nil {
		return nil, err
	}
	if a.MeanLead > 0 {
		return nil, fmt.Errorf("archetype %q is a reservation log; the replay driver schedules queued jobs", arch)
	}
	return workload.Synthesize(a, days, rand.New(rand.NewSource(seed)))
}
