// Command resgen generates the synthetic inputs used throughout the
// library: application DAGs (Table 1 of the paper) and batch workload
// logs in Standard Workload Format (Tables 2 and 3).
//
// Usage:
//
//	resgen dag -n 50 -width 0.5 -density 0.5 -regularity 0.5 -jump 1 \
//	       -alpha 0.2 -seed 1 -o app.json [-dot app.dot]
//	resgen log -arch SDSC_BLUE -days 45 -seed 1 -o blue.swf
//	resgen archetypes
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"resched/internal/daggen"
	"resched/internal/dagio"
	"resched/internal/schedio"
	"resched/internal/tables"
	"resched/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "dag":
		err = genDAG(os.Args[2:])
	case "log":
		err = genLog(os.Args[2:])
	case "resv":
		err = genResv(os.Args[2:])
	case "archetypes":
		err = listArchetypes()
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "resgen: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "resgen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `resgen generates application DAGs and workload logs.

Subcommands:
  dag         generate a mixed-parallel application DAG (JSON, optionally DOT)
  log         synthesize a batch workload log (SWF)
  resv        extract a reservation schedule from a (synthesized) log (JSON)
  archetypes  list the built-in workload archetypes

Run "resgen <subcommand> -h" for flags.`)
}

func genResv(args []string) error {
	fs := flag.NewFlagSet("resv", flag.ExitOnError)
	arch := fs.String("arch", "SDSC_DS", "workload archetype")
	days := fs.Int("days", 45, "log length in days")
	phi := fs.Float64("phi", 0.2, "fraction of jobs tagged as reservations")
	methodName := fs.String("method", "real", "decay method: linear, expo, real")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output JSON file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := workload.ByName(*arch)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	lg, err := workload.Synthesize(a, *days, rng)
	if err != nil {
		return err
	}
	var method workload.Method
	switch *methodName {
	case "linear":
		method = workload.Linear
	case "expo":
		method = workload.Expo
	case "real":
		method = workload.Real
	default:
		return fmt.Errorf("unknown decay method %q", *methodName)
	}
	starts, err := workload.StartTimes(lg, 1, rng)
	if err != nil {
		return err
	}
	ex, err := workload.Extract(lg, *phi, method, starts[0], rng)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := schedio.WriteReservations(w, ex.Procs, ex.At, ex.Future); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "extracted %d ongoing/future reservations at t=%d on %d processors\n",
		len(ex.Future), ex.At, ex.Procs)
	return nil
}

func genDAG(args []string) error {
	fs := flag.NewFlagSet("dag", flag.ExitOnError)
	spec := daggen.Default()
	fs.IntVar(&spec.N, "n", spec.N, "number of tasks")
	fs.Float64Var(&spec.Alpha, "alpha", spec.Alpha, "maximum Amdahl serial fraction")
	fs.Float64Var(&spec.Width, "width", spec.Width, "DAG width parameter in (0,1]")
	fs.Float64Var(&spec.Density, "density", spec.Density, "inter-level edge density in (0,1]")
	fs.Float64Var(&spec.Regularity, "regularity", spec.Regularity, "level-size regularity in [0,1]")
	fs.IntVar(&spec.Jump, "jump", spec.Jump, "maximum level distance of jump edges")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output JSON file (default stdout)")
	dot := fs.String("dot", "", "also write Graphviz DOT to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := daggen.Generate(spec, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dagio.Write(w, g); err != nil {
		return err
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(g.DOT()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "generated %d tasks, %d edges (%s)\n", g.NumTasks(), g.NumEdges(), spec)
	return nil
}

func genLog(args []string) error {
	fs := flag.NewFlagSet("log", flag.ExitOnError)
	arch := fs.String("arch", "SDSC_DS", "workload archetype (see 'resgen archetypes')")
	days := fs.Int("days", 45, "log length in days")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output SWF file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := workload.ByName(*arch)
	if err != nil {
		return err
	}
	lg, err := workload.Synthesize(a, *days, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := lg.WriteSWF(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "synthesized %d jobs over %d days, utilization %.1f%%\n",
		len(lg.Jobs), *days, 100*lg.Utilization())
	return nil
}

func listArchetypes() error {
	t := tables.New("Workload archetypes (calibrated to the paper's Tables 2 and 3)",
		"Name", "#CPUs", "Target util [%]", "Mean run [h]", "Reservation log")
	for _, a := range append(append([]workload.Archetype{}, workload.BatchArchetypes...), workload.Grid5000) {
		t.Addf(a.Name, a.Procs, 100*a.TargetUtil, float64(a.MeanRun)/3600, a.MeanLead > 0)
	}
	return t.Render(os.Stdout)
}
