// Command ressched schedules one mixed-parallel application against a
// reservation schedule, with any of the paper's algorithms.
//
// The application comes from a JSON DAG file (-dag, see resgen) or is
// generated on the fly from Table 1 parameters (-n). The reservation
// environment comes from an SWF log file (-swf) or a synthesized
// archetype log (-arch), tagged with -phi and reshaped with -method at
// a random observation time.
//
// Examples:
//
//	ressched -n 50 -arch SDSC_DS -phi 0.2 -method expo -algo BD_CPAR
//	ressched -dag app.json -arch Grid5000 -phi 1 -method real \
//	         -dl DL_RC_CPAR-l -tightest
//	ressched -dag app.json -swf blue.swf -phi 0.1 -dl DL_BD_CPA -deadline 86400
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/dagio"
	"resched/internal/gantt"
	"resched/internal/model"
	"resched/internal/profile"
	"resched/internal/schedio"
	"resched/internal/tables"
	"resched/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ressched: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dagFile := flag.String("dag", "", "application DAG JSON file (from resgen)")
	n := flag.Int("n", 50, "generate a random DAG with this many tasks (ignored with -dag)")
	swf := flag.String("swf", "", "workload log in SWF format")
	resv := flag.String("resv", "", "reservation-schedule JSON file (from 'resgen resv'); overrides -swf/-arch")
	arch := flag.String("arch", "SDSC_DS", "synthesize the log from this archetype (ignored with -swf)")
	days := flag.Int("days", 45, "synthetic log length in days")
	phi := flag.Float64("phi", 0.2, "fraction of jobs tagged as reservations")
	method := flag.String("method", "real", "reservation decay method: linear, expo, real")
	algo := flag.String("algo", "BD_CPAR", "RESSCHED bounding method: BD_ALL, BD_HALF, BD_CPA, BD_CPAR")
	bl := flag.String("bl", "BL_CPAR", "bottom-level method: BL_1, BL_ALL, BL_CPA, BL_CPAR")
	dl := flag.String("dl", "", "solve RESSCHEDDL with this algorithm instead (e.g. DL_RC_CPAR-l)")
	deadline := flag.Int64("deadline", 0, "deadline in seconds after now (with -dl)")
	tightest := flag.Bool("tightest", false, "binary-search the tightest deadline (with -dl)")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print the per-task schedule")
	showGantt := flag.Bool("gantt", false, "render the schedule as an ASCII Gantt chart")
	out := flag.String("o", "", "write the schedule as JSON (one reservation request per task)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))

	g, err := loadDAG(*dagFile, *n, rng)
	if err != nil {
		return err
	}
	var env core.Env
	if *resv != "" {
		env, err = loadEnv(*resv)
	} else {
		env, err = buildEnv(*swf, *arch, *days, *phi, *method, rng)
	}
	if err != nil {
		return err
	}
	sched, err := core.NewScheduler(g)
	if err != nil {
		return err
	}
	fmt.Printf("application: %d tasks, %d edges\n", g.NumTasks(), g.NumEdges())
	fmt.Printf("cluster: %d processors, %d reserved now, historical average %d available\n",
		env.P, env.Avail.ReservedAt(env.Now), env.Q)

	var result *core.Schedule
	switch {
	case *dl != "" && *tightest:
		a, err := core.ParseDL(*dl)
		if err != nil {
			return err
		}
		k, s, err := sched.TightestDeadline(env, a)
		if err != nil {
			return err
		}
		result = s
		fmt.Printf("%s: tightest deadline %s after now\n", a, fmtDur(k-env.Now))
	case *dl != "":
		a, err := core.ParseDL(*dl)
		if err != nil {
			return err
		}
		if *deadline <= 0 {
			return fmt.Errorf("-dl needs -deadline <seconds> or -tightest")
		}
		k := env.Now + *deadline
		s, err := sched.Deadline(env, a, k)
		if err != nil {
			return err
		}
		result = s
		fmt.Printf("%s: deadline met with %s of slack\n", a, fmtDur(k-s.Completion()))
	default:
		b, err := core.ParseBL(*bl)
		if err != nil {
			return err
		}
		a, err := core.ParseBD(*algo)
		if err != nil {
			return err
		}
		s, err := sched.Turnaround(env, b, a)
		if err != nil {
			return err
		}
		result = s
		fmt.Printf("%s_%s computed a schedule\n", b, a)
	}
	if err := sched.Verify(env, result); err != nil {
		return fmt.Errorf("schedule failed verification: %v", err)
	}
	fmt.Printf("turn-around time: %s   CPU-hours: %.1f\n", fmtDur(result.Turnaround()), result.CPUHours())
	if *verbose {
		t := tables.New("schedule", "Task", "Procs", "Start(+s)", "Duration", "Finish(+s)")
		for id, pl := range result.Tasks {
			name := g.Task(id).Name
			if name == "" {
				name = fmt.Sprintf("t%d", id)
			}
			t.Addf(name, pl.Procs, pl.Start-env.Now, pl.End-pl.Start, pl.End-env.Now)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	if *showGantt {
		if err := gantt.Render(os.Stdout, g, env, result, 0); err != nil {
			return err
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := schedio.Write(f, g, result); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "schedule written to %s\n", *out)
	}
	return nil
}

func loadDAG(path string, n int, rng *rand.Rand) (*dag.Graph, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dagio.Read(f)
	}
	spec := daggen.Default()
	spec.N = n
	return daggen.Generate(spec, rng)
}

// loadEnv builds the environment from a reservation-schedule JSON file
// written by "resgen resv". The historical average q cannot be derived
// from the file (it carries no past reservations), so it defaults to
// the current number of free processors.
func loadEnv(path string) (core.Env, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.Env{}, err
	}
	defer f.Close()
	procs, now, rs, err := schedio.ReadReservations(f)
	if err != nil {
		return core.Env{}, err
	}
	prof, err := profile.FromReservations(procs, now, rs)
	if err != nil {
		return core.Env{}, err
	}
	q := prof.FreeAt(now)
	if q < 1 {
		q = 1
	}
	return core.Env{P: procs, Now: now, Avail: prof, Q: q}, nil
}

func buildEnv(swf, arch string, days int, phi float64, methodName string, rng *rand.Rand) (core.Env, error) {
	var lg *workload.Log
	if swf != "" {
		f, err := os.Open(swf)
		if err != nil {
			return core.Env{}, err
		}
		defer f.Close()
		lg, err = workload.ParseSWF(f, swf)
		if err != nil {
			return core.Env{}, err
		}
	} else {
		a, err := workload.ByName(arch)
		if err != nil {
			return core.Env{}, err
		}
		lg, err = workload.Synthesize(a, days, rng)
		if err != nil {
			return core.Env{}, err
		}
	}
	var method workload.Method
	switch methodName {
	case "linear":
		method = workload.Linear
	case "expo":
		method = workload.Expo
	case "real":
		method = workload.Real
	default:
		return core.Env{}, fmt.Errorf("unknown decay method %q", methodName)
	}
	starts, err := workload.StartTimes(lg, 1, rng)
	if err != nil {
		return core.Env{}, err
	}
	ex, err := workload.Extract(lg, phi, method, starts[0], rng)
	if err != nil {
		return core.Env{}, err
	}
	prof, err := ex.Profile()
	if err != nil {
		return core.Env{}, err
	}
	q, err := core.HistoricalAvail(ex.Procs, ex.Past, ex.At, workload.HistWindow)
	if err != nil {
		return core.Env{}, err
	}
	return core.Env{P: ex.Procs, Now: ex.At, Avail: prof, Q: q}, nil
}

func fmtDur(d model.Duration) string {
	if d < 0 {
		return fmt.Sprintf("-%s", fmtDur(-d))
	}
	h := d / model.Hour
	m := (d % model.Hour) / model.Minute
	s := d % model.Minute
	return fmt.Sprintf("%dh%02dm%02ds", h, m, s)
}
