package main

import (
	"flag"
	"strings"
	"testing"
	"time"
)

// parseFlags builds a throwaway flag set with the daemon's engine
// flags and parses args against it.
func parseFlags(t *testing.T, args ...string) (*flag.FlagSet, bool) {
	t.Helper()
	fs := flag.NewFlagSet("reschedd", flag.ContinueOnError)
	online := fs.Bool("online", false, "")
	fs.Duration("tick", time.Second, "")
	fs.Bool("backfill", true, "")
	fs.Int("starve-attempts", 8, "")
	fs.Int64("starve-age", 900, "")
	fs.String("resv", "", "")
	fs.Int("procs", 64, "")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse(%v): %v", args, err)
	}
	return fs, *online
}

func TestValidateOnlineFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"defaults", nil, ""},
		{"online alone", []string{"-online"}, ""},
		{"online with engine flags", []string{"-online", "-tick", "5s", "-backfill=false", "-starve-attempts", "3", "-starve-age", "60"}, ""},
		{"offline with other flags", []string{"-procs", "16", "-resv", "x.json"}, ""},
		{"tick without online", []string{"-tick", "5s"}, "-tick requires -online"},
		{"backfill without online", []string{"-backfill=false"}, "-backfill requires -online"},
		{"starve-attempts without online", []string{"-starve-attempts", "3"}, "-starve-attempts requires -online"},
		{"starve-age without online", []string{"-starve-age", "60"}, "-starve-age requires -online"},
		{"online with resv", []string{"-online", "-resv", "x.json"}, "incompatible with -resv"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, online := parseFlags(t, tc.args...)
			err := validateOnlineFlags(fs, online)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateOnlineFlags(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateOnlineFlags(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}
