// Command reschedd serves the scheduling and reservation API over
// HTTP. It holds one reservation book for one cluster and lets
// concurrent clients compute RESSCHED / RESSCHEDDL schedules against
// live snapshots of it, commit them with optimistic concurrency, and
// manage individual advance reservations.
//
// The book starts empty (-procs processors, all free from -origin) or
// seeded from a reservation-schedule JSON file written by "resgen
// resv" (-resv; its processor count and observation time override
// -procs and -origin).
//
// With -shards N (and an -epoch length) the book is partitioned into
// N time epochs with independent locks and commit stamps, so commits
// into disjoint epochs proceed concurrently.
//
// With -online the daemon additionally runs the lifecycle engine
// (internal/lifecycle): jobs submitted via POST /v1/jobs queue, place,
// backfill under the activation guardrail, and receive
// starvation-triggered advance reservations; GET /v1/jobs/{id}/forecast
// reports per-job feasibility. The engine flags (-tick, -backfill,
// -starve-attempts, -starve-age) require -online — combining them
// without it is an error, not a silent no-op — and -online rejects
// -resv, because seeded reservations have no owning jobs for the
// engine to activate or release.
//
// With -coalesce-window the daemon transparently batches concurrent
// POST /v1/schedule requests arriving within the window onto one book
// snapshot and one multi-job optimistic commit (sealed early at
// -coalesce-batch requests); callers see the same responses they
// would get unbatched. -cpa-workers fans the CPA allocation phase of
// each computation across goroutines for wide DAGs, bit-identically
// to the serial path.
//
// Examples:
//
//	reschedd -addr :8080 -procs 128
//	reschedd -addr :8080 -coalesce-window 2ms -cpa-workers 4
//	reschedd -addr :8080 -resv resv.json -workers 8 -log json
//	reschedd -addr :8080 -shards 8 -epoch 86400
//	reschedd -addr :8080 -pprof-addr localhost:6060
//	reschedd -addr :8080 -online -backfill=true -starve-attempts 8
//
// The daemon drains in-flight requests on SIGINT/SIGTERM before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resched/internal/lifecycle"
	"resched/internal/model"
	"resched/internal/resbook"
	"resched/internal/schedio"
	"resched/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "reschedd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	procs := flag.Int("procs", 64, "cluster capacity in processors")
	origin := flag.Int64("origin", 0, "book origin time in seconds")
	resv := flag.String("resv", "", "seed the book from this reservation-schedule JSON file (from 'resgen resv')")
	workers := flag.Int("workers", 4, "max concurrently running scheduling computations")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes")
	retries := flag.Int("retries", 8, "max version-conflict retries per commit")
	logFormat := flag.String("log", "text", "log format: text or json")
	shards := flag.Int("shards", 1, "number of time-epoch shards in the reservation book")
	epoch := flag.Int64("epoch", int64(model.Day), "shard epoch length in seconds (used with -shards > 1)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (off when empty)")
	online := flag.Bool("online", false, "run the online job lifecycle engine (enables the /v1/jobs API)")
	tick := flag.Duration("tick", time.Second, "online engine scheduling period (requires -online)")
	backfill := flag.Bool("backfill", true, "online engine: backfill queued jobs under the activation guardrail (requires -online)")
	starveAttempts := flag.Int("starve-attempts", 8, "online engine: failed placement passes before a queued job gets an advance reservation, <=0 disables (requires -online)")
	starveAge := flag.Int64("starve-age", int64(15*model.Minute), "online engine: queue age in seconds before a queued job gets an advance reservation, <=0 disables (requires -online)")
	coalesceWindow := flag.Duration("coalesce-window", 0, "coalesce concurrent /v1/schedule requests arriving within this window onto one snapshot and commit (0 disables)")
	coalesceBatch := flag.Int("coalesce-batch", 16, "seal a coalesced group early at this many requests (used with -coalesce-window)")
	cpaWorkers := flag.Int("cpa-workers", 1, "goroutines per CPA allocation phase for wide DAGs (bit-identical to serial; 1 disables)")
	flag.Parse()

	if *coalesceBatch <= 0 {
		return fmt.Errorf("-coalesce-batch %d: must be positive", *coalesceBatch)
	}
	if *cpaWorkers <= 0 {
		return fmt.Errorf("-cpa-workers %d: must be positive", *cpaWorkers)
	}

	if err := validateOnlineFlags(flag.CommandLine, *online); err != nil {
		return err
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	log := slog.New(handler)

	book, err := buildBook(*resv, *procs, model.Time(*origin), *shards, model.Duration(*epoch))
	if err != nil {
		return err
	}

	var eng *lifecycle.Engine
	if *online {
		sa := *starveAttempts
		if sa <= 0 {
			sa = -1
		}
		sg := model.Duration(*starveAge)
		if sg <= 0 {
			sg = -1
		}
		eng, err = lifecycle.New(lifecycle.Config{
			Book:           book,
			Backfill:       *backfill,
			StarveAttempts: sa,
			StarveAge:      sg,
			MaxRetries:     *retries,
			Tick:           *tick,
			Logger:         log,
		})
		if err != nil {
			return err
		}
	}

	srv, err := server.New(server.Config{
		Book:             book,
		Workers:          *workers,
		Timeout:          *timeout,
		MaxBody:          *maxBody,
		MaxRetries:       *retries,
		Logger:           log,
		Engine:           eng,
		CoalesceWindow:   *coalesceWindow,
		CoalesceMaxBatch: *coalesceBatch,
		CPAWorkers:       *cpaWorkers,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if eng != nil {
		if err := eng.Start(ctx); err != nil {
			return err
		}
		defer eng.Close()
	}

	errc := make(chan error, 2)
	go func() {
		log.Info("listening",
			"addr", *addr,
			"procs", book.Capacity(),
			"origin", int64(book.Origin()),
			"shards", book.NumShards(),
			"reservations", len(book.List()),
		)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	// The profiling listener is deliberately separate from the API
	// listener: pprof endpoints are never exposed on the serving
	// address, and leaving -pprof-addr empty (the default) keeps them
	// out of the process entirely.
	var ps *http.Server
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pm,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("pprof: %w", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// With the listener drained, no new coalesce groups can form; serve
	// whatever is still grouped and join the leaders.
	srv.Close()
	if ps != nil {
		if err := ps.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("pprof shutdown: %w", err)
		}
	}
	log.Info("bye", "final_version", book.Version())
	return nil
}

// validateOnlineFlags fails fast on flag combinations the daemon
// would otherwise silently misinterpret: engine flags without
// -online, and -online with a seeded schedule (-resv), whose
// reservations have no owning jobs for the engine to drive.
func validateOnlineFlags(fs *flag.FlagSet, online bool) error {
	engineFlags := map[string]bool{
		"tick":            true,
		"backfill":        true,
		"starve-attempts": true,
		"starve-age":      true,
	}
	var bad error
	fs.Visit(func(f *flag.Flag) {
		if bad != nil {
			return
		}
		if !online && engineFlags[f.Name] {
			bad = fmt.Errorf("-%s requires -online", f.Name)
		}
		if online && f.Name == "resv" {
			bad = errors.New("-online is incompatible with -resv: seeded reservations have no owning jobs for the lifecycle engine")
		}
	})
	return bad
}

// buildBook seeds the reservation book: empty with the given capacity
// and origin, or from a reservation-schedule file whose own processor
// count and observation time take precedence. With shards > 1 the
// book is partitioned into time epochs of the given length.
func buildBook(resvPath string, procs int, origin model.Time, shards int, epoch model.Duration) (*resbook.Book, error) {
	if resvPath == "" {
		return resbook.NewSharded(procs, origin, shards, epoch)
	}
	f, err := os.Open(resvPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, now, rs, err := schedio.ReadReservations(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", resvPath, err)
	}
	b, err := resbook.NewSharded(p, now, shards, epoch)
	if err != nil {
		return nil, err
	}
	if err := b.Seed(rs); err != nil {
		return nil, err
	}
	return b, nil
}
