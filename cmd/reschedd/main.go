// Command reschedd serves the scheduling and reservation API over
// HTTP. It holds one reservation book for one cluster and lets
// concurrent clients compute RESSCHED / RESSCHEDDL schedules against
// live snapshots of it, commit them with optimistic concurrency, and
// manage individual advance reservations.
//
// The book starts empty (-procs processors, all free from -origin) or
// seeded from a reservation-schedule JSON file written by "resgen
// resv" (-resv; its processor count and observation time override
// -procs and -origin).
//
// Examples:
//
//	reschedd -addr :8080 -procs 128
//	reschedd -addr :8080 -resv resv.json -workers 8 -log json
//
// The daemon drains in-flight requests on SIGINT/SIGTERM before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resched/internal/model"
	"resched/internal/resbook"
	"resched/internal/schedio"
	"resched/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "reschedd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	procs := flag.Int("procs", 64, "cluster capacity in processors")
	origin := flag.Int64("origin", 0, "book origin time in seconds")
	resv := flag.String("resv", "", "seed the book from this reservation-schedule JSON file (from 'resgen resv')")
	workers := flag.Int("workers", 4, "max concurrently running scheduling computations")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes")
	retries := flag.Int("retries", 8, "max version-conflict retries per commit")
	logFormat := flag.String("log", "text", "log format: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	log := slog.New(handler)

	book, err := buildBook(*resv, *procs, model.Time(*origin))
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Book:       book,
		Workers:    *workers,
		Timeout:    *timeout,
		MaxBody:    *maxBody,
		MaxRetries: *retries,
		Logger:     log,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("listening",
			"addr", *addr,
			"procs", book.Capacity(),
			"origin", int64(book.Origin()),
			"reservations", len(book.List()),
		)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Info("bye", "final_version", book.Version())
	return nil
}

// buildBook seeds the reservation book: empty with the given capacity
// and origin, or from a reservation-schedule file whose own processor
// count and observation time take precedence.
func buildBook(resvPath string, procs int, origin model.Time) (*resbook.Book, error) {
	if resvPath == "" {
		return resbook.New(procs, origin), nil
	}
	f, err := os.Open(resvPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, now, rs, err := schedio.ReadReservations(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", resvPath, err)
	}
	return resbook.FromReservations(p, now, rs)
}
