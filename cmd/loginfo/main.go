// Command loginfo analyzes a batch workload log: Table 3-style
// statistics, a per-day utilization timeline, and the reservation
// schedule density that tagging a fraction of jobs would produce. It
// accepts real SWF logs or synthesizes one from an archetype.
//
// Examples:
//
//	loginfo -swf trace.swf
//	loginfo -arch SDSC_BLUE -days 45
//	loginfo -arch CTC_SP2 -phi 0.2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"resched/internal/batchsim"
	"resched/internal/model"
	"resched/internal/tables"
	"resched/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "loginfo: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	swf := flag.String("swf", "", "workload log in SWF format")
	arch := flag.String("arch", "SDSC_DS", "archetype to synthesize (ignored with -swf)")
	days := flag.Int("days", 45, "synthetic log length in days")
	queued := flag.Bool("queued", false, "synthesize through the EASY batch simulator (realistic waits)")
	phi := flag.Float64("phi", 0.2, "tagging fraction for the reservation-density section")
	seed := flag.Int64("seed", 1, "random seed")
	width := flag.Int("width", 60, "timeline width in columns")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var lg *workload.Log
	var err error
	switch {
	case *swf != "":
		f, err2 := os.Open(*swf)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		lg, err = workload.ParseSWF(f, *swf)
	case *queued:
		a, err2 := workload.ByName(*arch)
		if err2 != nil {
			return err2
		}
		lg, err = workload.SynthesizeQueued(a, *days, batchsim.EASY, rng)
	default:
		a, err2 := workload.ByName(*arch)
		if err2 != nil {
			return err2
		}
		lg, err = workload.Synthesize(a, *days, rng)
	}
	if err != nil {
		return err
	}
	if err := lg.Validate(); err != nil {
		return fmt.Errorf("log fails validation: %w", err)
	}

	st, err := workload.ComputeStats(lg)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("log %q", lg.Name), "Metric", "Value")
	first, last := lg.Span()
	t.Addf("machine size [procs]", lg.Procs)
	t.Addf("jobs", st.Jobs)
	t.Addf("span [days]", float64(last-first)/float64(model.Day))
	t.Addf("utilization [%]", 100*st.Utilization)
	t.Addf("mean exec time [h]", st.MeanRunHours)
	t.Addf("CV exec (weekly means) [%]", st.CVRunPct)
	t.Addf("mean time-to-exec [h]", st.MeanToExecH)
	t.Addf("CV time-to-exec (weekly means) [%]", st.CVToExecPct)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	if err := timeline(lg, *width); err != nil {
		return err
	}

	fmt.Println()
	return reservationDensity(lg, *phi, rng)
}

// timeline prints a per-column utilization band over the log's span.
func timeline(lg *workload.Log, width int) error {
	if width < 10 {
		width = 10
	}
	first, last := lg.Span()
	if last <= first {
		return fmt.Errorf("empty log span")
	}
	span := last - first
	util := make([]float64, width)
	colDur := float64(span) / float64(width)
	for _, j := range lg.Jobs {
		if j.Run == 0 {
			continue
		}
		lo := int(float64(j.Start()-first) / colDur)
		hi := int(float64(j.End()-1-first) / colDur)
		for c := lo; c <= hi && c < width; c++ {
			if c < 0 {
				continue
			}
			// Area contribution of this job to column c.
			cStart := first + model.Time(float64(c)*colDur)
			cEnd := first + model.Time(float64(c+1)*colDur)
			s, e := j.Start(), j.End()
			if s < cStart {
				s = cStart
			}
			if e > cEnd {
				e = cEnd
			}
			if e > s {
				util[c] += float64(j.Procs) * float64(e-s)
			}
		}
	}
	ramp := []byte(" .:-=+*#%@")
	row := make([]byte, width)
	for c := range row {
		frac := util[c] / (float64(lg.Procs) * colDur)
		idx := int(frac * float64(len(ramp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		row[c] = ramp[idx]
	}
	fmt.Printf("utilization over time (one column = %.1f h):\n|%s|\n",
		colDur/float64(model.Hour), string(row))
	return nil
}

// reservationDensity reports how many ongoing/future reservations each
// decay method yields at the middle of the log.
func reservationDensity(lg *workload.Log, phi float64, rng *rand.Rand) error {
	starts, err := workload.StartTimes(lg, 1, rng)
	if err != nil {
		// Short logs cannot host an observation point; not an error
		// for the tool's purpose.
		fmt.Printf("reservation density: log too short for an observation window\n")
		return nil
	}
	at := starts[0]
	t := tables.New(fmt.Sprintf("reservation schedule at t=%.1f days with phi=%.2f", float64(at)/float64(model.Day), phi),
		"Method", "Ongoing+future", "Past (7d window)")
	for _, m := range workload.AllMethods {
		ex, err := workload.Extract(lg, phi, m, at, rng)
		if err != nil {
			return err
		}
		past := 0
		for _, r := range ex.Past {
			if r.End > at-workload.HistWindow {
				past++
			}
		}
		t.Addf(m.String(), len(ex.Future), past)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return nil
}
