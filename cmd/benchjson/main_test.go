package main

import (
	"bufio"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: resched/internal/cpa
BenchmarkAllocate/p=32/stringent-1         	    7918	    150000 ns/op	   45000 B/op	      23 allocs/op
BenchmarkAllocate/p=32/stringent-1         	    7918	    180000 ns/op	   45000 B/op	      23 allocs/op
BenchmarkAllocate/p=32/stringent-1         	    7918	    165000 ns/op	   45000 B/op	      23 allocs/op
BenchmarkSingle-1                          	     100	   1000000 ns/op	  500 sched/s/core
PASS
pkg: resched/internal/server
BenchmarkAllocate/p=32/stringent-1         	     300	    900000 ns/op
PASS
`

func parseString(t *testing.T, s string) map[string]Result {
	t.Helper()
	out, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseKeepsFastestAndSpread(t *testing.T) {
	out := parseString(t, sampleOutput)

	res, ok := out["internal/cpa.BenchmarkAllocate/p=32/stringent"]
	if !ok {
		t.Fatalf("missing package-qualified benchmark, got %v", keys(out))
	}
	if res.NsOp != 150000 {
		t.Errorf("NsOp = %v, want the fastest repetition 150000", res.NsOp)
	}
	// Samples 150000/165000/180000: median 165000 -> spread 10%.
	if math.Abs(res.NsSpreadPct-10) > 1e-9 {
		t.Errorf("NsSpreadPct = %v, want 10", res.NsSpreadPct)
	}
	if res.AllocsOp != 23 {
		t.Errorf("AllocsOp = %v, want 23", res.AllocsOp)
	}

	// Same benchmark name in a different package must not collide.
	if res := out["internal/server.BenchmarkAllocate/p=32/stringent"]; res.NsOp != 900000 {
		t.Errorf("server package NsOp = %v, want 900000", res.NsOp)
	}

	// A single repetition has no spread, and custom units land in
	// Metrics.
	single := out["internal/cpa.BenchmarkSingle"]
	if single.NsSpreadPct != 0 {
		t.Errorf("single-rep NsSpreadPct = %v, want 0", single.NsSpreadPct)
	}
	if single.Metrics["sched/s/core"] != 500 {
		t.Errorf("Metrics = %v, want sched/s/core 500", single.Metrics)
	}
}

func keys(m map[string]Result) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// writeBenchFile marshals one run under the "optimized" label.
func writeBenchFile(t *testing.T, dir, name string, results map[string]Result) string {
	t.Helper()
	f := File{Format: "resched-bench/v1", Runs: map[string]map[string]Result{"optimized": results}}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareGateSlack drives the compare subcommand end to end: a
// regression over the threshold fails only when it also clears the
// new run's repetition spread, and the slack is capped at twice the
// threshold.
func TestCompareGateSlack(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchFile(t, dir, "old.json", map[string]Result{
		"a.BenchmarkStable":  {Iterations: 1, NsOp: 1000},
		"a.BenchmarkJittery": {Iterations: 1, NsOp: 1000},
	})
	cases := []struct {
		name     string
		newRes   map[string]Result
		wantFail string // substring of the error, empty for pass
	}{
		{
			name: "regression beyond threshold with no spread fails",
			newRes: map[string]Result{
				"a.BenchmarkStable":  {Iterations: 1, NsOp: 1200},
				"a.BenchmarkJittery": {Iterations: 1, NsOp: 900},
			},
			wantFail: "a.BenchmarkStable",
		},
		{
			name: "same regression inside the run's own jitter passes",
			newRes: map[string]Result{
				"a.BenchmarkStable":  {Iterations: 1, NsOp: 1200, NsSpreadPct: 8},
				"a.BenchmarkJittery": {Iterations: 1, NsOp: 900},
			},
		},
		{
			name: "slack is capped at twice the threshold",
			newRes: map[string]Result{
				"a.BenchmarkStable":  {Iterations: 1, NsOp: 1000},
				"a.BenchmarkJittery": {Iterations: 1, NsOp: 1500, NsSpreadPct: 90},
			},
			wantFail: "a.BenchmarkJittery",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newPath := writeBenchFile(t, dir, "new.json", tc.newRes)
			err := runCompare([]string{"-threshold", "15", old, newPath})
			if tc.wantFail == "" {
				if err != nil {
					t.Fatalf("want pass, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantFail) {
				t.Fatalf("want failure mentioning %q, got %v", tc.wantFail, err)
			}
		})
	}
}
