// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_*.json trajectory format committed at the
// repo root, and compares two trajectory files to gate regressions.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson -label optimized -out BENCH_PR2.json
//	benchjson compare -threshold 15 -gate internal/cpa.,internal/profile. BENCH_PR4.json BENCH_PR5.json
//
// compare prints the per-benchmark ns/op and allocs/op deltas for
// every benchmark present in both files (and lists the ones only in
// one of them), then exits non-zero if any gated benchmark — one
// whose name starts with a -gate prefix; all common benchmarks when
// -gate is empty — regressed ns/op by more than -threshold percent
// plus the benchmark's own repetition spread (see Result.NsSpreadPct;
// the slack is capped at twice the threshold). On a 1-vCPU shared
// machine, sub-microsecond benchmarks jitter well past a fixed
// percentage gate between identical binaries; requiring a regression
// to clear the same run's observed noise keeps the gate meaningful
// without loosening it for stable benchmarks. Deltas tolerated only
// by that slack are marked "~" in the table.
// allocs/op deltas are reported but never gate: measured allocations
// are exact, so the print is the review signal, while wall-clock
// gating keeps the hot path honest without failing on alloc-count
// changes a PR argues for explicitly.
//
// Each invocation parses the benchmark lines on stdin and stores them
// under the given label in the output file, merging with any labels
// already present — so a baseline run and an optimized run of the same
// benchmarks land side by side:
//
//	{
//	  "format": "resched-bench/v1",
//	  "runs": {
//	    "baseline":  {"internal/cpa.BenchmarkAllocateWide/n=200/p=256": {"ns_op": ..., "b_op": ..., "allocs_op": ...}},
//	    "optimized": {...}
//	  }
//	}
//
// Domain metrics reported via b.ReportMetric (turnaround-s, cpu-hours,
// probes, ...) are kept under "metrics" per benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsOp       float64            `json:"ns_op"`
	BOp        float64            `json:"b_op,omitempty"`
	AllocsOp   float64            `json:"allocs_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// NsSpreadPct is (median - min)/min ns/op across the -count
	// repetitions of one run, in percent — the benchmark's observed
	// same-binary jitter. Zero (and omitted) for single-repetition
	// runs. The compare gate widens its threshold by this much: a
	// "regression" smaller than the spread between identical
	// repetitions is indistinguishable from scheduling noise.
	NsSpreadPct float64 `json:"ns_spread_pct,omitempty"`
}

// File is the BENCH_*.json schema.
type File struct {
	Format string                       `json:"format"`
	Note   string                       `json:"note,omitempty"`
	Runs   map[string]map[string]Result `json:"runs"`
}

var benchLine = regexp.MustCompile(`^Benchmark\S+`)

// parse consumes `go test -bench` output. Package headers ("pkg:
// resched/internal/cpa") qualify the benchmark names that follow, so
// same-named benchmarks in different packages cannot collide. With
// `-count` repetitions the fastest ns/op line wins: the minimum is
// the noise-robust estimator for a CPU-bound benchmark (everything
// that perturbs a run makes it slower, never faster), which is what
// lets the compare gate hold a tight threshold on a shared machine.
func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	samples := make(map[string][]float64) // all ns/op repetitions per name
	pkg := ""
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			pkg = strings.TrimPrefix(pkg, "resched/")
			if pkg == "resched" {
				pkg = ""
			}
			continue
		}
		if !benchLine.MatchString(line) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -<GOMAXPROCS> suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "B/op":
				res.BOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[fields[i+1]] = v
			}
		}
		if res.NsOp > 0 {
			samples[name] = append(samples[name], res.NsOp)
		}
		if prev, ok := out[name]; ok && prev.NsOp > 0 && prev.NsOp <= res.NsOp {
			continue // keep the fastest repetition
		}
		out[name] = res
	}
	for name, ns := range samples {
		if len(ns) < 2 {
			continue
		}
		sort.Float64s(ns)
		med := ns[len(ns)/2]
		res := out[name]
		if res.NsOp > 0 {
			res.NsSpreadPct = (med - res.NsOp) / res.NsOp * 100
			out[name] = res
		}
	}
	return out, r.Err()
}

func run() error {
	label := flag.String("label", "optimized", "run label to store the parsed results under")
	outPath := flag.String("out", "BENCH_PR2.json", "output file; existing labels in it are preserved")
	note := flag.String("note", "", "optional note stored in the file (kept from the existing file if empty)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results, err := parse(sc)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	f := File{Format: "resched-bench/v1", Runs: make(map[string]map[string]Result)}
	if prev, err := os.ReadFile(*outPath); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			return fmt.Errorf("existing %s is not valid bench JSON: %w", *outPath, err)
		}
		if f.Runs == nil {
			f.Runs = make(map[string]map[string]Result)
		}
	}
	f.Format = "resched-bench/v1"
	if *note != "" {
		f.Note = *note
	}
	f.Runs[*label] = results

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results under label %q to %s\n", len(results), *label, *outPath)
	return nil
}

// loadRun reads one label's results out of a trajectory file.
func loadRun(path, label string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s is not valid bench JSON: %w", path, err)
	}
	run, ok := f.Runs[label]
	if !ok {
		labels := make([]string, 0, len(f.Runs))
		for l := range f.Runs {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		return nil, fmt.Errorf("%s holds no run labelled %q (has %s)", path, label, strings.Join(labels, ", "))
	}
	return run, nil
}

// pctDelta is the relative change from old to new in percent;
// positive means new is larger (slower / more allocations).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// runCompare implements the compare subcommand.
func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	label := fs.String("label", "optimized", "run label to compare in both files")
	threshold := fs.Float64("threshold", 15, "max tolerated ns/op regression on gated benchmarks, in percent")
	gate := fs.String("gate", "", "comma-separated benchmark-name prefixes to gate; empty gates every common benchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchjson compare [-label L] [-threshold N] [-gate prefixes] old.json new.json")
	}
	oldRun, err := loadRun(fs.Arg(0), *label)
	if err != nil {
		return err
	}
	newRun, err := loadRun(fs.Arg(1), *label)
	if err != nil {
		return err
	}
	var gates []string
	for _, g := range strings.Split(*gate, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gates = append(gates, g)
		}
	}
	gated := func(name string) bool {
		if len(gates) == 0 {
			return true
		}
		for _, g := range gates {
			if strings.HasPrefix(name, g) {
				return true
			}
		}
		return false
	}

	var common, added, removed []string
	for name := range newRun {
		if _, ok := oldRun[name]; ok {
			common = append(common, name)
		} else {
			added = append(added, name)
		}
	}
	for name := range oldRun {
		if _, ok := newRun[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(common)
	sort.Strings(added)
	sort.Strings(removed)
	if len(common) == 0 {
		return fmt.Errorf("no benchmark appears in both %s and %s under label %q", fs.Arg(0), fs.Arg(1), *label)
	}

	var failed []string
	for _, name := range common {
		o, n := oldRun[name], newRun[name]
		dNs := pctDelta(o.NsOp, n.NsOp)
		dAlloc := pctDelta(o.AllocsOp, n.AllocsOp)
		// The gate widens by the new run's own repetition spread
		// (capped at twice the threshold so nothing is ever ungated):
		// when identical code jitters by more than the nominal delta,
		// the delta carries no signal. "~" surfaces deltas tolerated
		// only because of that slack, so reviewers still see them.
		slack := n.NsSpreadPct
		if slack > 2**threshold {
			slack = 2 * *threshold
		}
		mark := " "
		if gated(name) && dNs > *threshold {
			if dNs > *threshold+slack {
				mark = "!"
				failed = append(failed, name)
			} else {
				mark = "~"
			}
		}
		fmt.Printf("%s %-62s ns/op %12.1f -> %12.1f (%+6.1f%% ±%4.1f%%)  allocs/op %7.0f -> %7.0f (%+6.1f%%)\n",
			mark, name, o.NsOp, n.NsOp, dNs, n.NsSpreadPct, o.AllocsOp, n.AllocsOp, dAlloc)
	}
	for _, name := range added {
		fmt.Printf("+ %-62s new benchmark, no baseline\n", name)
	}
	for _, name := range removed {
		fmt.Printf("- %-62s removed, was %12.1f ns/op\n", name, oldRun[name].NsOp)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d gated benchmark(s) regressed ns/op by more than %.0f%%: %s",
			len(failed), *threshold, strings.Join(failed, ", "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: compared %d benchmarks, no gated ns/op regression beyond %.0f%%\n",
		len(common), *threshold)
	return nil
}

func main() {
	var err error
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		err = runCompare(os.Args[2:])
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
