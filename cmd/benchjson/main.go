// Command benchjson converts `go test -bench` output into the
// machine-readable BENCH_*.json trajectory format committed at the
// repo root.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson -label optimized -out BENCH_PR2.json
//
// Each invocation parses the benchmark lines on stdin and stores them
// under the given label in the output file, merging with any labels
// already present — so a baseline run and an optimized run of the same
// benchmarks land side by side:
//
//	{
//	  "format": "resched-bench/v1",
//	  "runs": {
//	    "baseline":  {"internal/cpa.BenchmarkAllocateWide/n=200/p=256": {"ns_op": ..., "b_op": ..., "allocs_op": ...}},
//	    "optimized": {...}
//	  }
//	}
//
// Domain metrics reported via b.ReportMetric (turnaround-s, cpu-hours,
// probes, ...) are kept under "metrics" per benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsOp       float64            `json:"ns_op"`
	BOp        float64            `json:"b_op,omitempty"`
	AllocsOp   float64            `json:"allocs_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_*.json schema.
type File struct {
	Format string                       `json:"format"`
	Note   string                       `json:"note,omitempty"`
	Runs   map[string]map[string]Result `json:"runs"`
}

var benchLine = regexp.MustCompile(`^Benchmark\S+`)

// parse consumes `go test -bench` output. Package headers ("pkg:
// resched/internal/cpa") qualify the benchmark names that follow, so
// same-named benchmarks in different packages cannot collide.
func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	pkg := ""
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			pkg = strings.TrimPrefix(pkg, "resched/")
			if pkg == "resched" {
				pkg = ""
			}
			continue
		}
		if !benchLine.MatchString(line) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -<GOMAXPROCS> suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "B/op":
				res.BOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[fields[i+1]] = v
			}
		}
		out[name] = res
	}
	return out, r.Err()
}

func run() error {
	label := flag.String("label", "optimized", "run label to store the parsed results under")
	outPath := flag.String("out", "BENCH_PR2.json", "output file; existing labels in it are preserved")
	note := flag.String("note", "", "optional note stored in the file (kept from the existing file if empty)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results, err := parse(sc)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	f := File{Format: "resched-bench/v1", Runs: make(map[string]map[string]Result)}
	if prev, err := os.ReadFile(*outPath); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			return fmt.Errorf("existing %s is not valid bench JSON: %w", *outPath, err)
		}
		if f.Runs == nil {
			f.Runs = make(map[string]map[string]Result)
		}
	}
	f.Format = "resched-bench/v1"
	if *note != "" {
		f.Note = *note
	}
	f.Runs[*label] = results

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results under label %q to %s\n", len(results), *label, *outPath)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
