// Command resexp regenerates every table of the paper's evaluation.
//
// Each -table value maps to one table of the paper (see DESIGN.md's
// experiment index): 1 and 2 print the input models, 3 the workload
// statistics and reservation-schedule correlations (Section 3.2.1),
// "bl" the bottom-level method comparison of Section 4.3.1, 4 and 5
// the RESSCHED results, 6 and 7 the RESSCHEDDL results, 8 the
// complexity summary, and 9 and 10 the algorithm execution times.
//
// The paper averages 1,000 random instances over 1,440 scenarios; the
// defaults here are laptop-scale and flag-adjustable:
//
//	resexp -table all                    # everything, reduced scale
//	resexp -table 4 -apps 40 -dagreps 20 -starts 10 -taggings 5
//	resexp -table 6 -apps 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"resched/internal/core"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/sim"
	"resched/internal/stats"
	"resched/internal/tables"
	"resched/internal/workload"
)

type options struct {
	apps    int
	verbose bool
}

func main() {
	table := flag.String("table", "all", "tables to regenerate: all or comma list of 1,2,3,bl,4,5,6,7,8,9,10")
	apps := flag.Int("apps", 8, "application specs sampled from the Table 1 grid (0 = all 40)")
	dagreps := flag.Int("dagreps", 3, "sample DAGs per application spec (paper: 20)")
	starts := flag.Int("starts", 3, "observation times per log (paper: 10)")
	taggings := flag.Int("taggings", 2, "random taggings per observation time (paper: 5)")
	days := flag.Int("days", 45, "synthetic log length in days")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "scenario-level parallelism (0 = NumCPU)")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.LogDays = *days
	cfg.DAGReps = *dagreps
	cfg.StartTimes = *starts
	cfg.Taggings = *taggings
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *verbose {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d scenarios", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	lab := sim.NewLab(cfg)
	opt := options{apps: *apps, verbose: *verbose}

	run := map[string]func(*sim.Lab, options) error{
		"1": table1, "2": table2, "3": table3, "bl": tableBL,
		"4": table4, "5": table5, "6": table6, "7": table7,
		"8": table8, "9": table9, "10": table10,
		"ext": tableExt, "pess": tablePess, "dyn": tableDyn, "multi": tableMulti,
	}
	order := []string{"1", "2", "3", "bl", "4", "5", "6", "7", "8", "9", "10", "ext", "pess", "dyn", "multi"}

	want := map[string]bool{}
	if *table == "all" {
		for _, k := range order {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*table, ",") {
			k = strings.TrimSpace(k)
			if _, ok := run[k]; !ok {
				fmt.Fprintf(os.Stderr, "resexp: unknown table %q\n", k)
				os.Exit(2)
			}
			want[k] = true
		}
	}
	for _, k := range order {
		if !want[k] {
			continue
		}
		t0 := time.Now()
		if err := run[k](lab, opt); err != nil {
			fmt.Fprintf(os.Stderr, "resexp: table %s: %v\n", k, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[table %s took %v]\n", k, time.Since(t0).Round(time.Millisecond))
		}
		fmt.Println()
	}
}

// appSubset samples n diverse specs from the Table 1 grid (all 40 when
// n <= 0 or n >= 40).
func appSubset(n int) []daggen.Spec {
	grid := daggen.ParamGrid()
	if n <= 0 || n >= len(grid) {
		return grid
	}
	out := make([]daggen.Spec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, grid[i*len(grid)/n])
	}
	return out
}

func table1(_ *sim.Lab, _ options) error {
	t := tables.New("Table 1: application model parameter values (defaults in the Values column repeat the boldface of the paper)",
		"Parameter", "Values", "Default")
	t.Add("Number of tasks", "10, 25, 50, 75, 100", "50")
	t.Add("alpha", ".05, .10, .15, .20", ".20")
	t.Add("width", ".1 .. .9", ".5")
	t.Add("density", ".1 .. .9", ".5")
	t.Add("regularity", ".1 .. .9", ".5")
	t.Add("jump", "1, 2, 3, 4", "1")
	return t.Render(os.Stdout)
}

func table2(lab *sim.Lab, _ options) error {
	t := tables.New("Table 2: batch logs (synthetic, calibrated to the paper's traces)",
		"Name", "#CPUs", "Jobs", "Target util [%]", "Achieved util [%]")
	for _, a := range workload.BatchArchetypes {
		lg, err := lab.Log(a)
		if err != nil {
			return err
		}
		t.Addf(a.Name, a.Procs, len(lg.Jobs), 100*a.TargetUtil, 100*lg.Utilization())
	}
	return t.Render(os.Stdout)
}

func table3(lab *sim.Lab, _ options) error {
	t := tables.New("Table 3: statistics for the Grid'5000 reservation log and four batch logs",
		"Log", "Avg exec [h]", "CV exec [%]", "Avg time-to-exec [h]", "CV time-to-exec [%]")
	logs := append([]workload.Archetype{workload.Grid5000}, workload.BatchArchetypes...)
	for _, a := range logs {
		lg, err := lab.Log(a)
		if err != nil {
			return err
		}
		st, err := workload.ComputeStats(lg)
		if err != nil {
			return err
		}
		t.Addf(st.Name, st.MeanRunHours, st.CVRunPct, st.MeanToExecH, st.CVToExecPct)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// Section 3.2.1 in-text result: correlation between Grid'5000
	// reservation schedules and synthetic schedules per decay method.
	corr, err := methodCorrelations(lab)
	if err != nil {
		return err
	}
	ct := tables.New("Section 3.2.1: mean correlation of synthetic reservation schedules with Grid'5000 schedules",
		"Method", "Mean Pearson r")
	for _, m := range workload.AllMethods {
		ct.Addf(m.String(), corr[m])
	}
	return ct.Render(os.Stdout)
}

// methodCorrelations compares the reserved-processor time series of
// Grid'5000 reservation schedules with synthetic schedules generated
// from the batch logs by each decay method.
func methodCorrelations(lab *sim.Lab) (map[workload.Method]float64, error) {
	g5k, err := lab.Log(workload.Grid5000)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(lab.Config().Seed + 99))
	g5kStarts, err := workload.StartTimes(g5k, 4, rng)
	if err != nil {
		return nil, err
	}
	// Reference series: normalized Grid'5000 reserved processors over
	// the week following each start.
	var refs [][]float64
	for _, at := range g5kStarts {
		ex, err := workload.Extract(g5k, 1, workload.Real, at, rng)
		if err != nil {
			return nil, err
		}
		s, err := workload.ReservedSeries(ex.Procs, ex.Future, at, at+7*model.Day, model.Hour)
		if err != nil {
			return nil, err
		}
		refs = append(refs, s)
	}

	out := make(map[workload.Method]float64)
	for _, method := range workload.AllMethods {
		var rs []float64
		for _, arch := range workload.BatchArchetypes {
			lg, err := lab.Log(arch)
			if err != nil {
				return nil, err
			}
			starts, err := workload.StartTimes(lg, 2, rng)
			if err != nil {
				return nil, err
			}
			for _, at := range starts {
				ex, err := workload.Extract(lg, 0.2, method, at, rng)
				if err != nil {
					return nil, err
				}
				s, err := workload.ReservedSeries(ex.Procs, ex.Future, at, at+7*model.Day, model.Hour)
				if err != nil {
					return nil, err
				}
				for _, ref := range refs {
					if r, err := stats.Pearson(ref, s); err == nil {
						rs = append(rs, r)
					}
				}
			}
		}
		out[method] = stats.Mean(rs)
	}
	return out, nil
}

func tableBL(lab *sim.Lab, opt options) error {
	apps := appSubset(opt.apps)
	scenarios := sim.SynthScenarios(apps, workload.BatchArchetypes, sim.PaperPhis, workload.AllMethods)
	res, err := sim.RunBLComparison(lab, scenarios, core.AllBD)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("Section 4.3.1: bottom-level methods over %d cases (scenario x bounding method)", res.Cases),
		"Method", "Best [% of cases]", "Improvement vs BL_1 [min %]", "[max %]")
	for i, m := range res.Methods {
		t.Addf(m.String(), 100*res.BestShare[i], res.MinImprovePct[i], res.MaxImprovePct[i])
	}
	return t.Render(os.Stdout)
}

func table4(lab *sim.Lab, opt options) error {
	apps := appSubset(opt.apps)
	scenarios := sim.SynthScenarios(apps, workload.BatchArchetypes, sim.PaperPhis, workload.AllMethods)
	res, err := sim.RunTurnaround(lab, scenarios, core.AllBD)
	if err != nil {
		return err
	}
	return renderTurnaround("Table 4: turn-around time minimization (synthetic reservation schedules)", res)
}

func table5(lab *sim.Lab, opt options) error {
	apps := appSubset(opt.apps)
	res, err := sim.RunTurnaround(lab, sim.Grid5000Scenarios(apps), core.AllBD)
	if err != nil {
		return err
	}
	return renderTurnaround("Table 5: turn-around time minimization (Grid'5000 reservation schedules)", res)
}

func renderTurnaround(title string, res *sim.TurnaroundResult) error {
	t := tables.New(fmt.Sprintf("%s — %d scenarios, %d instances", title, res.Scenarios, res.Instances),
		"Algorithm", "TAT deg [%]", "TAT wins", "CPU-h deg [%]", "CPU-h wins")
	for i, a := range res.Algorithms {
		t.Addf(a.String(), res.DegTurnaround[i], res.WinsTurnaround[i], res.DegCPUHours[i], res.WinsCPUHours[i])
	}
	return t.Render(os.Stdout)
}

func table6(lab *sim.Lab, opt options) error {
	apps := appSubset(min(opt.apps, 6))
	algos := []core.DLAlgorithm{core.DLBDAll, core.DLBDCPA, core.DLBDCPAR, core.DLRCCPA, core.DLRCCPAR}
	type column struct {
		label string
		res   *sim.DeadlineResult
	}
	var cols []column
	for _, phi := range sim.PaperPhis {
		scenarios := sim.SynthScenarios(apps, []workload.Archetype{workload.SDSCBlue}, []float64{phi}, workload.AllMethods)
		res, err := sim.RunDeadline(lab, scenarios, algos)
		if err != nil {
			return err
		}
		cols = append(cols, column{fmt.Sprintf("phi=%.1f", phi), res})
	}
	g5k, err := sim.RunDeadline(lab, sim.Grid5000Scenarios(apps), algos)
	if err != nil {
		return err
	}
	cols = append(cols, column{"Grid5000", g5k})

	headers := []string{"Algorithm"}
	for _, c := range cols {
		headers = append(headers, "K "+c.label)
	}
	for _, c := range cols {
		headers = append(headers, "CPUh "+c.label)
	}
	t := tables.New("Table 6: meeting a deadline — tightest deadline (K) and CPU-hours at a loose deadline, avg % degradation from best",
		headers...)
	for i, a := range algos {
		row := []interface{}{a.String()}
		for _, c := range cols {
			row = append(row, c.res.DegTightest[i])
		}
		for _, c := range cols {
			row = append(row, c.res.DegCPUHours[i])
		}
		t.Addf(row...)
	}
	return t.Render(os.Stdout)
}

func table7(lab *sim.Lab, opt options) error {
	apps := appSubset(min(opt.apps, 8))
	algos := []core.DLAlgorithm{core.DLBDCPA, core.DLRCCPAR, core.DLRCCPARLambda, core.DLRCBDCPARLambda}
	res, err := sim.RunDeadline(lab, sim.Grid5000Scenarios(apps), algos)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("Table 7: improved resource-conservative algorithms on Grid'5000 schedules — %d scenarios, %d instances (%d skipped)",
		res.Scenarios, res.Instances, res.SkippedInstances),
		"Algorithm", "Tightest deadline deg [%]", "CPU-hours (loose) deg [%]")
	for i, a := range algos {
		t.Addf(a.String(), res.DegTightest[i], res.DegCPUHours[i])
	}
	return t.Render(os.Stdout)
}

func table8(_ *sim.Lab, _ options) error {
	t := tables.New("Table 8: worst-case asymptotic complexities (V tasks, E edges, P procs, P' historical average, R/R' reservations)",
		"Algorithm", "Complexity")
	rows := [][2]string{
		{"BD_ALL", "O(V^2 P' + V^2 P + V E P' + V R P)"},
		{"BD_CPA", "O(V^2 P' + V^2 P + V E P' + V E P + V R P)"},
		{"BD_CPAR", "O(V^2 P' + V E P' + V R P')"},
		{"DL_BD_ALL", "O(V^2 P' + V^2 P + V E P' + V R' P)"},
		{"DL_BD_CPA", "O(V^2 P' + V^2 P + V E P' + V E P + V R' P)"},
		{"DL_BD_CPAR", "O(V^2 P' + V E P' + V R' P')"},
		{"DL_RC_CPA", "O(V^2 P' + V^2 P + V E P' + V E P + V R' P)"},
		{"DL_RC_CPAR", "O(V^2 P' + V E P' + V R' P')"},
		{"DL_RC_CPAR-l", "O(V^2 P' + V E P' + V R' P')"},
		{"DL_RCBD_CPAR-l", "O(V^2 P' + V E P' + V R' P')"},
	}
	for _, r := range rows {
		t.Add(r[0], r[1])
	}
	return t.Render(os.Stdout)
}

func table9(lab *sim.Lab, _ options) error {
	var specs []daggen.Spec
	for _, n := range []int{10, 25, 50, 75, 100} {
		s := daggen.Default()
		s.N = n
		specs = append(specs, s)
	}
	labels := []string{"n=10", "n=25", "n=50", "n=75", "n=100"}
	return renderTiming(lab, "Table 9: average algorithm execution times [ms] as n varies (Grid'5000 schedules)", specs, labels)
}

func table10(lab *sim.Lab, _ options) error {
	var specs []daggen.Spec
	var labels []string
	for _, d := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		s := daggen.Default()
		s.Density = d
		specs = append(specs, s)
		labels = append(labels, fmt.Sprintf("d=%.1f", d))
	}
	return renderTiming(lab, "Table 10: average algorithm execution times [ms] as density varies (Grid'5000 schedules)", specs, labels)
}

func renderTiming(lab *sim.Lab, title string, specs []daggen.Spec, labels []string) error {
	base := sim.Scenario{Arch: workload.Grid5000, Phi: 1, Method: workload.Real}
	res, err := sim.RunTiming(lab, specs, base)
	if err != nil {
		return err
	}
	headers := append([]string{"Algorithm"}, labels...)
	t := tables.New(title, headers...)
	for _, row := range res.Rows {
		cells := []interface{}{row.Name}
		for _, ms := range row.MeanMs {
			if ms < 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.3f", ms))
			}
		}
		t.Addf(cells...)
	}
	return t.Render(os.Stdout)
}

// tableExt is not a paper table: it compares the library's extensions
// (one-step scheduler, blind probe-based scheduler) against BD_CPAR on
// the same instances.
func tableExt(lab *sim.Lab, opt options) error {
	apps := appSubset(min(opt.apps, 6))
	scenarios := sim.SynthScenarios(apps, []workload.Archetype{workload.SDSCDS}, []float64{0.2}, workload.AllMethods)
	res, err := sim.RunExtensions(lab, scenarios)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("Extensions: full-knowledge BD_CPAR vs one-step vs blind scheduling — %d instances", res.Instances),
		"Scheduler", "Mean turnaround [h]", "Mean CPU-hours", "Mean probes")
	t.Addf("BD_CPAR", res.TurnBDCPAR/3600, res.CPUBDCPAR, "-")
	t.Addf("one-step", res.TurnOneStep/3600, res.CPUOneStep, "-")
	t.Addf("blind (probe)", res.TurnBlind/3600, res.CPUBlind, res.MeanProbes)
	return t.Render(os.Stdout)
}

// tablePess is the runtime-overestimation study Section 3.1 of the
// paper leaves open: mean reserved/realized turnaround and CPU-hour
// waste per pessimism factor.
func tablePess(lab *sim.Lab, opt options) error {
	apps := appSubset(min(opt.apps, 6))
	scenarios := sim.SynthScenarios(apps, []workload.Archetype{workload.SDSCDS}, []float64{0.2}, []workload.Method{workload.Expo})
	factors := []float64{1, 1.5, 2, 3, 5}
	res, err := sim.RunPessimism(lab, scenarios, factors)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("Pessimistic runtime estimates (Section 3.1's open question) — %d instances", res.Instances),
		"Factor", "Reserved TAT [h]", "Realized TAT [h]", "Wasted CPU-h [%]")
	for i, f := range res.Factors {
		t.Addf(fmt.Sprintf("%.1fx", f), res.ReservedTAT[i]/3600, res.RealizedTAT[i]/3600, res.WastePct[i])
	}
	return t.Render(os.Stdout)
}

// tableDyn is the changing-reservation-table study (Section 3.2.2's
// frozen-table assumption relaxed): survival and slowdown per conflict
// strategy.
func tableDyn(lab *sim.Lab, opt options) error {
	apps := appSubset(min(opt.apps, 6))
	scenarios := sim.SynthScenarios(apps, []workload.Archetype{workload.SDSCDS}, []float64{0.2}, []workload.Method{workload.Expo})
	res, err := sim.RunDynamic(lab, scenarios, 1.0)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("Booking against a changing reservation table (competitor rate 1.0) — %d instances", res.Instances),
		"Strategy", "Survival [%]", "Slowdown vs plan [%]", "Mean conflicts")
	for i, s := range res.Strategies {
		t.Addf(s.String(), res.SurvivalPct[i], res.SlowdownPct[i], res.MeanConflicts[i])
	}
	return t.Render(os.Stdout)
}

// tableMulti compares single-site scheduling against a two-site
// federation (SDSC_DS + OSC_Cluster) under the HCPA-inspired
// CPA-bounded policy and the M-HEFT-inspired unbounded policy, with a
// 15-minute inter-site staging delay.
func tableMulti(lab *sim.Lab, opt options) error {
	apps := appSubset(min(opt.apps, 6))
	res, err := sim.RunMultiSite(lab, apps, workload.SDSCDS, workload.OSCCluster, 0.2, 15*model.Minute)
	if err != nil {
		return err
	}
	t := tables.New(fmt.Sprintf("Multi-site federation (SDSC_DS + OSC_Cluster, 15 min staging) — %d instances", res.Instances),
		"Platform / policy", "Mean turnaround [h]", "Mean CPU-hours")
	t.Addf("SDSC_DS alone (CPA)", res.TurnSolo/3600, res.CPUSolo)
	t.Addf("federation, CPA-bounded", res.TurnCPA/3600, res.CPUCPA)
	t.Addf("federation, unbounded", res.TurnUnbounded/3600, res.CPUUnbounded)
	return t.Render(os.Stdout)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
