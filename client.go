package resched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"resched/internal/api"
	"resched/internal/dagio"
)

// Wire types of the reschedd HTTP API, shared with the server so the
// two cannot drift.
type (
	// ScheduleResult is the response of a schedule or deadline
	// request: the per-task placements plus, when committed, the
	// reservation IDs booked for them.
	ScheduleResult = api.ScheduleResponse
	// TaskPlacement is one task's reservation within a ScheduleResult.
	TaskPlacement = api.Placement
	// BookedReservation is one reservation held by a reschedd book.
	BookedReservation = api.Reservation
	// ClusterProfile is the daemon's availability profile view.
	ClusterProfile = api.ProfileResponse
)

// APIError is a non-2xx response from a reschedd daemon.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server-reported error
}

func (e *APIError) Error() string {
	return fmt.Sprintf("reschedd: HTTP %d: %s", e.Status, e.Message)
}

// Client talks to a reschedd daemon. The zero value is not usable;
// construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a Client for the daemon at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient uses
// http.DefaultClient; pass one with a Timeout for production use.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// ScheduleOptions parameterize Client.Schedule. Zero values pick the
// server defaults (BL_CPAR, BD_CPAR, now = book origin, q = 0).
type ScheduleOptions struct {
	BL, BD string // bottom-level and bounding method names
	Now    Time   // scheduling time; 0 means the book's origin
	Q      int    // historical average available processors
	Commit bool   // book the schedule's reservations atomically
}

// Schedule computes a RESSCHED schedule for the application on the
// daemon's current reservation book and, with opts.Commit, books it.
func (c *Client) Schedule(ctx context.Context, g *Graph, opts ScheduleOptions) (*ScheduleResult, error) {
	raw, err := encodeDAG(g)
	if err != nil {
		return nil, err
	}
	req := api.ScheduleRequest{DAG: raw, BL: opts.BL, BD: opts.BD, Now: opts.Now, Q: opts.Q, Commit: opts.Commit}
	var resp ScheduleResult
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeadlineOptions parameterize Client.Deadline. Exactly one of
// Deadline (seconds after Now) or Tightest must be set.
type DeadlineOptions struct {
	Algo     string   // RESSCHEDDL algorithm name; "" means DL_RC_CPAR-l
	Deadline Duration // deadline, in seconds after the scheduling time
	Tightest bool     // binary-search the tightest feasible deadline
	Now      Time
	Q        int
	Commit   bool
}

// Deadline computes a RESSCHEDDL schedule on the daemon. The result's
// Deadline field reports the absolute deadline met (the tightest one
// found, when opts.Tightest is set). Infeasible deadlines surface as
// an *APIError with status 422.
func (c *Client) Deadline(ctx context.Context, g *Graph, opts DeadlineOptions) (*ScheduleResult, error) {
	raw, err := encodeDAG(g)
	if err != nil {
		return nil, err
	}
	req := api.DeadlineRequest{
		DAG: raw, Algo: opts.Algo, Deadline: opts.Deadline,
		Tightest: opts.Tightest, Now: opts.Now, Q: opts.Q, Commit: opts.Commit,
	}
	var resp ScheduleResult
	if err := c.do(ctx, http.MethodPost, "/v1/deadline", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Reserve books one advance reservation directly.
func (c *Client) Reserve(ctx context.Context, start, end Time, procs int) (*BookedReservation, error) {
	var resp BookedReservation
	err := c.do(ctx, http.MethodPost, "/v1/reservations", api.ReservationRequest{Start: start, End: end, Procs: procs}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Reservations lists every reservation the daemon's book has seen,
// including released ones.
func (c *Client) Reservations(ctx context.Context) ([]BookedReservation, error) {
	var resp []BookedReservation
	if err := c.do(ctx, http.MethodGet, "/v1/reservations", nil, &resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Reservation fetches one reservation by ID.
func (c *Client) Reservation(ctx context.Context, id string) (*BookedReservation, error) {
	var resp BookedReservation
	if err := c.do(ctx, http.MethodGet, "/v1/reservations/"+id, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Activate marks a pending reservation active.
func (c *Client) Activate(ctx context.Context, id string) (*BookedReservation, error) {
	var resp BookedReservation
	if err := c.do(ctx, http.MethodPost, "/v1/reservations/"+id+"/activate", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Release cancels a reservation, returning its processors to the
// book. Releasing an already-released reservation is an *APIError
// with status 409.
func (c *Client) Release(ctx context.Context, id string) (*BookedReservation, error) {
	var resp BookedReservation
	if err := c.do(ctx, http.MethodDelete, "/v1/reservations/"+id, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Profile fetches the daemon's current availability profile.
func (c *Client) Profile(ctx context.Context) (*ClusterProfile, error) {
	var resp ClusterProfile
	if err := c.do(ctx, http.MethodGet, "/v1/profile", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func encodeDAG(g *Graph) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := dagio.Write(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// do runs one JSON round trip, mapping non-2xx responses to *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		payload, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr api.Error
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}
