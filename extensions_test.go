package resched_test

import (
	"math/rand"
	"strings"
	"testing"

	"resched"
)

func exampleGraph(t *testing.T) *resched.Graph {
	t.Helper()
	spec := resched.DefaultDAGSpec()
	spec.N = 12
	g, err := resched.GenerateDAG(spec, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBlindScheduleFacade(t *testing.T) {
	g := exampleGraph(t)
	avail := resched.NewProfile(32, 0)
	if err := avail.Reserve(0, resched.Time(resched.Hour), 16); err != nil {
		t.Fatal(err)
	}
	bs := resched.NewSimulatedBatch(avail, 0)
	res, err := resched.BlindSchedule(g, bs, resched.BlindOptions{Q: 24})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes == 0 {
		t.Fatal("no probes issued")
	}
	// The blind schedule must hold up against the true environment.
	s, err := resched.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	env := resched.Env{P: 32, Now: 0, Avail: avail, Q: 24}
	if err := s.Verify(env, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestOneStepFacade(t *testing.T) {
	g := exampleGraph(t)
	env := resched.Env{P: 24, Now: 0, Avail: resched.NewProfile(24, 0), Q: 24}
	res, err := resched.OneStepSchedule(g, env, resched.OneStepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := resched.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if res.Evaluated < 1 {
		t.Fatalf("search stats %+v", res)
	}
}

func TestMultiSiteFacade(t *testing.T) {
	g := exampleGraph(t)
	env := resched.MultiEnv{
		Now: 0,
		Clusters: []resched.Site{
			{Name: "a", P: 16, Avail: resched.NewProfile(16, 0)},
			{Name: "b", P: 16, Avail: resched.NewProfile(16, 0)},
		},
	}
	opt := resched.MultiOptions{StageDelay: resched.Minute}
	sched, err := resched.MultiTurnaround(g, env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := resched.MultiVerify(g, env, sched, opt); err != nil {
		t.Fatal(err)
	}
	// Deadline variant at 2x the forward turnaround.
	deadline := resched.Time(2 * sched.Turnaround())
	dl, err := resched.MultiDeadline(g, env, opt, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if err := resched.MultiVerify(g, env, dl, opt); err != nil {
		t.Fatal(err)
	}
	if dl.Completion() > deadline {
		t.Fatalf("multi-site deadline missed: %d > %d", dl.Completion(), deadline)
	}
}

func TestRenderGanttFacade(t *testing.T) {
	g := exampleGraph(t)
	env := resched.Env{P: 16, Now: 0, Avail: resched.NewProfile(16, 0)}
	s, err := resched.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := resched.RenderGantt(&b, g, env, sched, 50); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "time axis") {
		t.Fatalf("gantt output missing header:\n%s", b.String())
	}
}
